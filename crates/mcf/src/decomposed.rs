//! The decomposed link-based MCF (§3.1.2) — the paper's scalability contribution.
//!
//! Instead of one LP over `N(N-1)` commodities, the problem is split into:
//!
//! 1. a **master LP** over `N` source-grouped flows (`O(N²)` variables for bounded
//!    degree), which yields the optimal concurrent rate `F` and, per source, an
//!    aggregate flow that delivers `F` to every other endpoint; and
//! 2. `N` independent **child LPs**, one per source, which split that aggregate flow
//!    into per-destination flows on the capacity-restricted subgraph. The children are
//!    embarrassingly parallel and are dispatched with rayon.
//!
//! The decomposition preserves the optimal `F` of the original formulation (the master
//! is a relaxation obtained by aggregating commodities per source, and the children
//! prove the aggregate is splittable), while reducing the dominant LP from `O(N³)` to
//! `O(N²)` variables.

use std::time::Instant;

use a2a_lp::{
    triangular_crash, BasisStatus, ConstraintSense, LpProblem, Pricing, SimplexOptions, VarId, INF,
};
use a2a_topology::{EdgeId, NodeId, Topology};
use rayon::prelude::*;

use crate::linkmcf::{validate, FLOW_TOL};
use crate::types::{CommoditySet, LinkFlowSolution, McfError, McfResult};

/// Solver configuration for the decomposed MCF: which pricing rule the simplex
/// uses, whether the child LPs are seeded from the master's solution, and
/// whether the LP-layer presolve/scaling reductions run before each solve.
#[derive(Debug, Clone)]
pub struct DecomposedOptions {
    /// Pricing rule for both the master and the child LPs.
    pub pricing: Pricing,
    /// Seed each child LP with a crash basis projected from the master solution
    /// (columns on edges that carry master flow are preferred into the basis)
    /// instead of starting every child from the all-slack basis.
    pub warm_start_children: bool,
    /// Run the LP presolve reductions (fixed-variable elimination, singleton-row
    /// substitution, empty/redundant-row removal) on the master and child LPs.
    pub presolve: bool,
    /// Apply geometric-mean row/column scaling to the (presolved) LPs.
    pub scaling: bool,
    /// Start the master LP from a structural crash basis instead of the
    /// all-slack basis: `F` gets a finite upper bound from the endpoint cut
    /// argument and is crashed nonbasic *at* that bound, while per-source BFS
    /// shortest-path-tree edges are preferred into the basis. All basic columns
    /// have zero cost, so the crash is dual-feasible by construction and the
    /// (generally primal-infeasible) start is handed to the dual simplex,
    /// which avoids the long degenerate primal phase-1 crawl on large tori.
    pub crash_master: bool,
}

impl Default for DecomposedOptions {
    fn default() -> Self {
        Self {
            pricing: Pricing::default(),
            warm_start_children: true,
            presolve: true,
            scaling: true,
            crash_master: true,
        }
    }
}

impl DecomposedOptions {
    /// The [`SimplexOptions`] these decomposed options translate to (before any
    /// per-LP warm start is attached).
    fn simplex_options(&self) -> SimplexOptions {
        SimplexOptions {
            pricing: self.pricing,
            presolve: self.presolve,
            scaling: self.scaling,
            ..SimplexOptions::default()
        }
    }
}

/// Wall-clock breakdown of a decomposed solve. On a single-core machine the children
/// run sequentially; `max_child_secs` is the per-child critical path, i.e. the child
/// contribution to runtime if the children were spread over `N` cores as in the paper.
#[derive(Debug, Clone)]
pub struct DecomposedTimings {
    /// Time spent in the master (source-grouped) LP.
    pub master_secs: f64,
    /// Time spent in each child LP, indexed by source endpoint position.
    pub child_secs: Vec<f64>,
    /// Simplex iterations of the master LP.
    pub master_iterations: usize,
    /// Master iterations taken by the dual simplex phase (nonzero exactly when
    /// the crash basis engaged the dual method; see
    /// [`DecomposedOptions::crash_master`]).
    pub master_dual_iterations: usize,
    /// Basis changes (pivots) of the master LP.
    pub master_pivots: usize,
    /// Simplex iterations per child LP.
    pub child_iterations: Vec<usize>,
    /// Iterations taken by the dual simplex phase per child LP (children warm
    /// start primal-feasible, so these are nonzero only when a child engages
    /// the dual under [`SimplexOptions::dual_simplex`] `Always`).
    pub child_dual_iterations: Vec<usize>,
    /// Basis changes (pivots) per child LP.
    pub child_pivots: Vec<usize>,
    /// Basis refactorizations of the master LP.
    pub master_refactorizations: usize,
    /// Basis refactorizations per child LP.
    pub child_refactorizations: Vec<usize>,
    /// Constraint rows presolve removed from the master LP.
    pub master_presolve_rows_removed: usize,
    /// Variables presolve removed from the master LP.
    pub master_presolve_cols_removed: usize,
    /// Per-refactorization progress samples of the master LP (empty unless
    /// tracing or the stall watchdog was active during the solve).
    pub master_progress: Vec<a2a_obs::SimplexProgress>,
    /// Stall-watchdog trips across the master and every child (0 when the
    /// watchdog is not configured).
    pub watchdog_trips: u64,
}

impl DecomposedTimings {
    /// Total child time (sequential execution).
    pub fn total_child_secs(&self) -> f64 {
        self.child_secs.iter().sum()
    }

    /// Longest single child (parallel critical path).
    pub fn max_child_secs(&self) -> f64 {
        self.child_secs.iter().copied().fold(0.0, f64::max)
    }

    /// Estimated runtime with all children run in parallel on `N` cores (what the
    /// paper reports for MCF-decomp).
    pub fn parallel_estimate_secs(&self) -> f64 {
        self.master_secs + self.max_child_secs()
    }

    /// Total simplex iterations across the master and every child.
    pub fn total_iterations(&self) -> usize {
        self.master_iterations + self.child_iterations.iter().sum::<usize>()
    }

    /// Total dual-simplex iterations across the master and every child.
    pub fn total_dual_iterations(&self) -> usize {
        self.master_dual_iterations + self.child_dual_iterations.iter().sum::<usize>()
    }

    /// Total basis changes across the master and every child.
    pub fn total_pivots(&self) -> usize {
        self.master_pivots + self.child_pivots.iter().sum::<usize>()
    }

    /// Total basis refactorizations across the master and every child.
    pub fn total_refactorizations(&self) -> usize {
        self.master_refactorizations + self.child_refactorizations.iter().sum::<usize>()
    }
}

/// Result of the decomposed MCF.
#[derive(Debug, Clone)]
pub struct DecomposedMcf {
    /// Per-commodity flows (same shape as the original formulation's output).
    pub solution: LinkFlowSolution,
    /// Aggregate per-source flows from the master LP, indexed by source endpoint
    /// position within the commodity set.
    pub source_flows: Vec<Vec<(EdgeId, f64)>>,
    /// Timing breakdown.
    pub timings: DecomposedTimings,
}

/// Output of the master LP alone (used by the Fig. 7 runtime study and by callers that
/// only need `F`).
#[derive(Debug, Clone)]
pub struct MasterSolution {
    /// Optimal concurrent flow value.
    pub flow_value: f64,
    /// Aggregate flow per source endpoint: `(edge, flow)` pairs.
    pub source_flows: Vec<Vec<(EdgeId, f64)>>,
    /// Time spent solving the master LP.
    pub elapsed_secs: f64,
    /// Simplex iterations of the master LP.
    pub iterations: usize,
    /// Master iterations taken by the dual simplex phase.
    pub dual_iterations: usize,
    /// Basis changes (pivots) of the master LP.
    pub pivots: usize,
    /// Basis refactorizations of the master LP.
    pub refactorizations: usize,
    /// Constraint rows presolve removed from the master LP.
    pub presolve_rows_removed: usize,
    /// Variables presolve removed from the master LP.
    pub presolve_cols_removed: usize,
    /// Per-refactorization progress samples (see [`a2a_obs::SimplexProgress`]).
    pub progress: Vec<a2a_obs::SimplexProgress>,
    /// Stall-watchdog trips during the master solve.
    pub watchdog_trips: u64,
}

/// Per-child solve output: per-destination flows plus solver statistics.
struct ChildOutcome {
    per_dest: Vec<Vec<(EdgeId, f64)>>,
    secs: f64,
    iterations: usize,
    dual_iterations: usize,
    pivots: usize,
    refactorizations: usize,
    watchdog_trips: u64,
}

/// Solves the decomposed MCF for an all-to-all among all nodes.
pub fn solve_decomposed_mcf(topo: &Topology) -> McfResult<DecomposedMcf> {
    solve_decomposed_mcf_among(topo, CommoditySet::all_pairs(topo.num_nodes()))
}

/// Solves the decomposed MCF for an explicit commodity set with default options.
pub fn solve_decomposed_mcf_among(
    topo: &Topology,
    commodities: CommoditySet,
) -> McfResult<DecomposedMcf> {
    solve_decomposed_mcf_with(topo, commodities, &DecomposedOptions::default())
}

/// Solves the decomposed MCF for an explicit commodity set with explicit solver
/// options (the perf harness uses this to compare cold/warm and pricing configs).
pub fn solve_decomposed_mcf_with(
    topo: &Topology,
    commodities: CommoditySet,
    options: &DecomposedOptions,
) -> McfResult<DecomposedMcf> {
    let _obs = a2a_obs::span("decomposed.solve");
    let master = solve_master_with(topo, &commodities, options)?;
    let flow_value = master.flow_value;

    // Child LPs, one per source endpoint, dispatched in parallel.
    let endpoints = commodities.endpoints().to_vec();
    let child_results: Vec<McfResult<ChildOutcome>> = endpoints
        .par_iter()
        .enumerate()
        .map(|(s_idx, &s)| {
            solve_child(
                topo,
                &commodities,
                s,
                &master.source_flows[s_idx],
                flow_value,
                options,
            )
        })
        .collect();

    let mut child_secs = Vec::with_capacity(endpoints.len());
    let mut child_iterations = Vec::with_capacity(endpoints.len());
    let mut child_dual_iterations = Vec::with_capacity(endpoints.len());
    let mut child_pivots = Vec::with_capacity(endpoints.len());
    let mut child_refactorizations = Vec::with_capacity(endpoints.len());
    let mut flows = vec![Vec::new(); commodities.len()];
    let mut watchdog_trips = master.watchdog_trips;
    for (s_idx, result) in child_results.into_iter().enumerate() {
        let outcome = result?;
        watchdog_trips += outcome.watchdog_trips;
        child_secs.push(outcome.secs);
        child_iterations.push(outcome.iterations);
        child_dual_iterations.push(outcome.dual_iterations);
        child_pivots.push(outcome.pivots);
        child_refactorizations.push(outcome.refactorizations);
        let s = endpoints[s_idx];
        for (d_pos, flow) in outcome.per_dest.into_iter().enumerate() {
            // d_pos enumerates destinations in endpoint order, skipping the source.
            let d = destination_at(&endpoints, s_idx, d_pos);
            let idx = commodities
                .index_of(s, d)
                .expect("destination is an endpoint");
            flows[idx] = flow;
        }
    }

    Ok(DecomposedMcf {
        solution: LinkFlowSolution {
            commodities,
            flow_value,
            flows,
        },
        source_flows: master.source_flows,
        timings: DecomposedTimings {
            master_secs: master.elapsed_secs,
            child_secs,
            master_iterations: master.iterations,
            master_dual_iterations: master.dual_iterations,
            master_pivots: master.pivots,
            child_iterations,
            child_dual_iterations,
            child_pivots,
            master_refactorizations: master.refactorizations,
            child_refactorizations,
            master_presolve_rows_removed: master.presolve_rows_removed,
            master_presolve_cols_removed: master.presolve_cols_removed,
            master_progress: master.progress,
            watchdog_trips,
        },
    })
}

fn destination_at(endpoints: &[NodeId], s_idx: usize, d_pos: usize) -> NodeId {
    let mut pos = d_pos;
    if pos >= s_idx {
        pos += 1;
    }
    endpoints[pos]
}

/// Solves just the master (source-grouped) LP: `maximize F` subject to per-edge
/// capacities and the grouped conservation constraint (8) of the paper.
pub fn solve_master(topo: &Topology, commodities: &CommoditySet) -> McfResult<MasterSolution> {
    solve_master_with(topo, commodities, &DecomposedOptions::default())
}

/// [`solve_master`] with explicit solver options.
pub fn solve_master_with(
    topo: &Topology,
    commodities: &CommoditySet,
    options: &DecomposedOptions,
) -> McfResult<MasterSolution> {
    let _obs = a2a_obs::span("decomposed.master");
    validate(topo, commodities)?;
    let start = Instant::now();
    let endpoints = commodities.endpoints();
    let is_endpoint = endpoint_mask(topo, endpoints);

    let mut lp = LpProblem::maximize();
    let f_var = lp.add_var("F", 0.0, INF, 1.0);
    // vars[s_idx][e] = aggregate flow of source s over edge e.
    let vars: Vec<Vec<VarId>> = endpoints
        .iter()
        .map(|&s| {
            (0..topo.num_edges())
                .map(|e| lp.add_var(format!("g_{s}_e{e}"), 0.0, INF, 0.0))
                .collect()
        })
        .collect();

    // Capacity: sum over sources <= cap(e).
    for (e, edge) in topo.edges().iter().enumerate() {
        if edge.capacity.is_infinite() {
            continue;
        }
        lp.add_constraint(
            vars.iter().map(|per_edge| (per_edge[e], 1.0)),
            ConstraintSense::Le,
            edge.capacity,
        );
    }

    // Grouped conservation / demand. For endpoint u != s the node must sink F; for
    // non-endpoint transit nodes plain conservation holds.
    for (s_idx, &s) in endpoints.iter().enumerate() {
        let per_edge = &vars[s_idx];
        for u in 0..topo.num_nodes() {
            if u == s || (topo.out_degree(u) == 0 && topo.in_degree(u) == 0) {
                continue;
            }
            let coeffs = topo
                .out_edges(u)
                .iter()
                .map(|&e| (per_edge[e], 1.0))
                .chain(topo.in_edges(u).iter().map(|&e| (per_edge[e], -1.0)));
            if is_endpoint[u] {
                lp.add_constraint(
                    coeffs.chain(std::iter::once((f_var, 1.0))),
                    ConstraintSense::Le,
                    0.0,
                );
            } else {
                lp.add_constraint(coeffs, ConstraintSense::Le, 0.0);
            }
        }
        // Useless flow back into the source is forbidden.
        for &e in topo.in_edges(s) {
            lp.set_bounds(per_edge[e], 0.0, 0.0);
        }
    }

    let mut opts = options.simplex_options();
    if options.crash_master {
        let f_upper = master_flow_upper_bound(topo, endpoints);
        if f_upper.is_finite() {
            // Bounding F is what lets the crash park it *at* a bound: with the
            // zero-cost basis below, y = 0, so F (the only costed column) is
            // dual-feasible exactly when it sits at its upper bound.
            lp.set_bounds(f_var, 0.0, f_upper);
            let mut preference = vec![0.0; lp.num_vars()];
            for (s_idx, &s) in endpoints.iter().enumerate() {
                bfs_tree_edge_counts(topo, s, &is_endpoint, &vars[s_idx], &mut preference);
            }
            let sf = lp.to_standard_form()?;
            let mut crash = triangular_crash(&sf, &preference);
            crash.statuses[f_var.index()] = BasisStatus::AtUpper;
            opts.warm_start = Some(crash);
        }
    }
    let sol = lp.solve_with(&opts)?;
    let flow_value = sol.value(f_var);
    let source_flows = vars
        .iter()
        .map(|per_edge| {
            per_edge
                .iter()
                .enumerate()
                .filter_map(|(e, &v)| {
                    let val = sol.value(v);
                    (val > FLOW_TOL).then_some((e, val))
                })
                .collect()
        })
        .collect();
    Ok(MasterSolution {
        flow_value,
        source_flows,
        elapsed_secs: start.elapsed().as_secs_f64(),
        iterations: sol.iterations,
        dual_iterations: sol.dual_iterations,
        pivots: sol.pivots,
        refactorizations: sol.refactorizations,
        presolve_rows_removed: sol.presolve_rows_removed,
        presolve_cols_removed: sol.presolve_cols_removed,
        progress: sol.progress,
        watchdog_trips: sol.watchdog_trips,
    })
}

fn endpoint_mask(topo: &Topology, endpoints: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; topo.num_nodes()];
    for &e in endpoints {
        mask[e] = true;
    }
    mask
}

/// A valid upper bound on the concurrent rate `F` from the endpoint cut
/// argument: every endpoint must push `(k-1)·F` total flow out (one `F` to each
/// of the other `k-1` endpoints) and absorb `(k-1)·F` in, so
/// `F <= min(out_cap(u), in_cap(u)) / (k-1)` for every endpoint `u`. Endpoints
/// whose adjacent capacity is infinite contribute no bound; `INF` is returned
/// when no endpoint yields a finite one (the crash is skipped in that case).
fn master_flow_upper_bound(topo: &Topology, endpoints: &[NodeId]) -> f64 {
    if endpoints.len() < 2 {
        return INF;
    }
    let denom = (endpoints.len() - 1) as f64;
    let adjacent_cap = |edges: &[EdgeId]| edges.iter().map(|&e| topo.edge(e).capacity).sum::<f64>();
    endpoints
        .iter()
        .map(|&u| adjacent_cap(topo.out_edges(u)).min(adjacent_cap(topo.in_edges(u))) / denom)
        .filter(|b| b.is_finite())
        .fold(INF, f64::min)
}

/// Accumulates, into `preference`, how many endpoint destinations the BFS
/// shortest-path tree rooted at `s` reaches through each edge. Edges on many
/// tree paths are the structurally likely carriers of source `s`'s aggregate
/// flow, so the crash prefers their columns into the starting basis.
fn bfs_tree_edge_counts(
    topo: &Topology,
    s: NodeId,
    is_endpoint: &[bool],
    per_edge: &[VarId],
    preference: &mut [f64],
) {
    let mut parent_edge = vec![usize::MAX; topo.num_nodes()];
    let mut visited = vec![false; topo.num_nodes()];
    visited[s] = true;
    let mut queue = std::collections::VecDeque::from([s]);
    while let Some(u) = queue.pop_front() {
        for &e in topo.out_edges(u) {
            let v = topo.edge(e).dst;
            if !visited[v] {
                visited[v] = true;
                parent_edge[v] = e;
                queue.push_back(v);
            }
        }
    }
    for d in 0..topo.num_nodes() {
        if d == s || !is_endpoint[d] || !visited[d] {
            continue;
        }
        let mut u = d;
        while u != s {
            let e = parent_edge[u];
            preference[per_edge[e].index()] += 1.0;
            u = topo.edge(e).src;
        }
    }
}

/// Solves one child LP: split the aggregate flow of source `s` into per-destination
/// flows of value `flow_value` each, minimizing total flow (paper constraints
/// (10)–(14)). Returns per-destination `(edge, flow)` lists (destinations in endpoint
/// order, skipping `s`) and the solve statistics.
///
/// With [`DecomposedOptions::warm_start_children`] the child does not start from the
/// all-slack basis: the master's solution is *projected* onto the child by building
/// a [`triangular_crash`] basis that prefers columns in proportion to the master
/// flow on their edge, so the simplex begins with the master's active edges already
/// basic on the conservation rows and phase 1 has far less work to do.
fn solve_child(
    topo: &Topology,
    commodities: &CommoditySet,
    s: NodeId,
    source_flow: &[(EdgeId, f64)],
    flow_value: f64,
    options: &DecomposedOptions,
) -> McfResult<ChildOutcome> {
    let _obs = a2a_obs::span("decomposed.child");
    let start = Instant::now();
    let endpoints = commodities.endpoints();
    let dests: Vec<NodeId> = endpoints.iter().copied().filter(|&d| d != s).collect();

    if flow_value <= FLOW_TOL {
        // Degenerate: nothing to route.
        return Ok(ChildOutcome {
            per_dest: vec![Vec::new(); dests.len()],
            secs: start.elapsed().as_secs_f64(),
            iterations: 0,
            dual_iterations: 0,
            pivots: 0,
            refactorizations: 0,
            watchdog_trips: 0,
        });
    }

    // Restrict to edges the master actually uses for this source.
    let used_edges: Vec<(EdgeId, f64)> = source_flow
        .iter()
        .copied()
        .filter(|&(_, f)| f > FLOW_TOL)
        .collect();
    if used_edges.is_empty() {
        return Err(McfError::Lp(format!(
            "master LP routed no flow out of source {s}"
        )));
    }
    let mut lp = LpProblem::minimize();
    // vars[d_pos][local edge index]
    let vars: Vec<Vec<VarId>> = dests
        .iter()
        .map(|&d| {
            used_edges
                .iter()
                .map(|&(e, _)| lp.add_var(format!("h_{s}_{d}_e{e}"), 0.0, INF, 1.0))
                .collect()
        })
        .collect();

    // Capacity: per used edge, sum over destinations <= master flow (with a hair of
    // numerical slack so that tolerance-level noise cannot make the child infeasible).
    for (local, &(_, cap)) in used_edges.iter().enumerate() {
        lp.add_constraint(
            vars.iter().map(|per_edge| (per_edge[local], 1.0)),
            ConstraintSense::Le,
            cap + 1e-9,
        );
    }

    // Conservation and demand per destination.
    let demand = flow_value * (1.0 - 1e-7);
    for (d_pos, &d) in dests.iter().enumerate() {
        let per_edge = &vars[d_pos];
        for u in 0..topo.num_nodes() {
            if u == s || u == d {
                continue;
            }
            let coeffs: Vec<(VarId, f64)> = used_edges
                .iter()
                .enumerate()
                .filter_map(|(local, &(e, _))| {
                    let edge = topo.edge(e);
                    if edge.src == u {
                        Some((per_edge[local], 1.0))
                    } else if edge.dst == u {
                        Some((per_edge[local], -1.0))
                    } else {
                        None
                    }
                })
                .collect();
            if !coeffs.is_empty() {
                lp.add_constraint(coeffs, ConstraintSense::Le, 0.0);
            }
        }
        let inflow: Vec<(VarId, f64)> = used_edges
            .iter()
            .enumerate()
            .filter_map(|(local, &(e, _))| {
                (topo.edge(e).dst == d).then_some((per_edge[local], 1.0))
            })
            .collect();
        if inflow.is_empty() {
            return Err(McfError::Lp(format!(
                "master flow of source {s} never reaches destination {d}"
            )));
        }
        lp.add_constraint(inflow, ConstraintSense::Ge, demand);
        // No flow may leave the destination.
        for (local, &(e, _)) in used_edges.iter().enumerate() {
            if topo.edge(e).src == d {
                lp.set_bounds(per_edge[local], 0.0, 0.0);
            }
        }
    }

    // Lower once and solve on the standard form directly (the model wrapper
    // would lower a second time); the child is a minimization, so objective and
    // variable values need no sign flip.
    let sf = lp.to_standard_form()?;
    let warm_start = if options.warm_start_children {
        // Project the master basis: child columns are preferred into the crash
        // basis in proportion to the master flow their edge carries (with INF
        // upper bounds, positive master flow implies the aggregate variable was
        // basic in the master).
        let mut preference = vec![0.0; lp.num_vars()];
        for per_edge in &vars {
            for (local, &v) in per_edge.iter().enumerate() {
                preference[v.index()] = used_edges[local].1;
            }
        }
        Some(triangular_crash(&sf, &preference))
    } else {
        None
    };
    let opts = SimplexOptions {
        warm_start,
        ..options.simplex_options()
    };
    let sol = a2a_lp::simplex::solve(&sf, &opts)?;
    let per_dest = vars
        .iter()
        .map(|per_edge| {
            per_edge
                .iter()
                .enumerate()
                .filter_map(|(local, &v)| {
                    let val = sol.x[v.index()];
                    (val > FLOW_TOL).then_some((used_edges[local].0, val))
                })
                .collect()
        })
        .collect();
    Ok(ChildOutcome {
        per_dest,
        secs: start.elapsed().as_secs_f64(),
        iterations: sol.iterations,
        dual_iterations: sol.dual_iterations,
        pivots: sol.pivots,
        refactorizations: sol.refactorizations,
        watchdog_trips: sol.watchdog_trips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkmcf::solve_link_mcf;
    use a2a_topology::generators;

    fn assert_same_f(topo: &Topology) {
        let original = solve_link_mcf(topo).unwrap();
        let decomposed = solve_decomposed_mcf(topo).unwrap();
        assert!(
            (original.flow_value - decomposed.solution.flow_value).abs() < 1e-5,
            "{}: original F = {}, decomposed F = {}",
            topo.name(),
            original.flow_value,
            decomposed.solution.flow_value
        );
        // The decomposed per-commodity flows must be feasible and deliver F.
        assert!(decomposed.solution.check_consistency(topo, 1e-5).is_empty());
        assert!(decomposed.solution.max_link_utilization(topo) <= 1.0 + 1e-5);
    }

    #[test]
    fn matches_original_on_complete_graph() {
        assert_same_f(&generators::complete(4));
    }

    #[test]
    fn matches_original_on_directed_ring() {
        assert_same_f(&generators::ring(5));
    }

    #[test]
    fn matches_original_on_hypercube() {
        assert_same_f(&generators::hypercube(3));
    }

    #[test]
    fn matches_original_on_generalized_kautz() {
        assert_same_f(&generators::generalized_kautz(12, 3));
    }

    #[test]
    fn matches_original_on_bipartite() {
        assert_same_f(&generators::complete_bipartite(3, 3));
    }

    /// Warm-started child LPs must reproduce the cold-start optimal concurrent rate
    /// `F` exactly, with a feasible per-commodity split, across pricing rules and
    /// topology families.
    #[test]
    fn warm_started_children_match_cold_start() {
        for topo in [
            generators::torus(&[3, 3]),
            generators::hypercube(3),
            generators::generalized_kautz(12, 3),
        ] {
            let commodities = CommoditySet::all_pairs(topo.num_nodes());
            let cold = solve_decomposed_mcf_with(
                &topo,
                commodities.clone(),
                &DecomposedOptions {
                    pricing: Pricing::Dantzig,
                    warm_start_children: false,
                    ..DecomposedOptions::default()
                },
            )
            .unwrap();
            let warm = solve_decomposed_mcf_with(
                &topo,
                commodities,
                &DecomposedOptions {
                    pricing: Pricing::Devex,
                    warm_start_children: true,
                    ..DecomposedOptions::default()
                },
            )
            .unwrap();
            assert!(
                (cold.solution.flow_value - warm.solution.flow_value).abs() <= 1e-7,
                "{}: cold F = {}, warm F = {}",
                topo.name(),
                cold.solution.flow_value,
                warm.solution.flow_value
            );
            assert!(warm.solution.check_consistency(&topo, 1e-5).is_empty());
            assert!(warm.solution.max_link_utilization(&topo) <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn timings_are_populated() {
        let topo = generators::hypercube(3);
        let decomposed = solve_decomposed_mcf(&topo).unwrap();
        assert_eq!(decomposed.timings.child_secs.len(), 8);
        assert_eq!(decomposed.timings.child_iterations.len(), 8);
        assert_eq!(decomposed.timings.child_pivots.len(), 8);
        assert!(decomposed.timings.master_iterations > 0);
        assert!(decomposed.timings.total_iterations() >= decomposed.timings.total_pivots());
        assert!(decomposed.timings.master_secs >= 0.0);
        assert!(decomposed.timings.total_child_secs() >= decomposed.timings.max_child_secs());
        assert!(
            decomposed.timings.parallel_estimate_secs()
                <= decomposed.timings.master_secs + decomposed.timings.total_child_secs() + 1e-12
        );
        // Source flows exist for every endpoint.
        assert_eq!(decomposed.source_flows.len(), 8);
        assert!(decomposed.source_flows.iter().all(|f| !f.is_empty()));
    }

    /// Regression guard for the master degeneracy fix: on a torus the master
    /// LP is massively degenerate (thousands of zero-cost flow columns per
    /// commodity), and the historical cold Dantzig/devex trajectory burned
    /// ~9000 iterations on the 4x4 case. The structural crash basis must
    /// price dual-feasible, hand the whole solve to the dual simplex (no
    /// primal cleanup), reproduce the no-crash optimum exactly, and stay an
    /// order of magnitude below the degenerate iteration count.
    #[test]
    fn crash_basis_solves_torus_master_dually() {
        let topo = generators::torus(&[4, 4]);
        let commodities = CommoditySet::all_pairs(16);
        let crashed =
            solve_master_with(&topo, &commodities, &DecomposedOptions::default()).unwrap();
        let cold = solve_master_with(
            &topo,
            &commodities,
            &DecomposedOptions {
                crash_master: false,
                ..DecomposedOptions::default()
            },
        )
        .unwrap();
        assert!(
            crashed.dual_iterations > 0,
            "crash basis no longer engages the dual simplex"
        );
        assert_eq!(
            crashed.iterations, crashed.dual_iterations,
            "dual phase fell back to primal cleanup on the torus master"
        );
        assert!(
            (crashed.flow_value - cold.flow_value).abs() < 1e-7,
            "crash F = {}, cold F = {}",
            crashed.flow_value,
            cold.flow_value
        );
        assert!(
            crashed.iterations < 2500,
            "torus-4x4 master took {} iterations — degeneracy is back",
            crashed.iterations
        );
    }

    #[test]
    fn master_only_reports_flow_value() {
        let topo = generators::torus(&[3, 3]);
        let commodities = CommoditySet::all_pairs(9);
        let master = solve_master(&topo, &commodities).unwrap();
        let original = solve_link_mcf(&topo).unwrap();
        assert!((master.flow_value - original.flow_value).abs() < 1e-5);
    }

    #[test]
    #[ignore = "several-minute LP on a single core; covered by the fig3 bench harness"]
    fn host_bottleneck_reduces_flow_value() {
        use a2a_topology::transform::HostNicAugmented;
        // 3x3x3 torus with host bandwidth below node bandwidth: the paper reports
        // F = 2/27 for the bottlenecked case vs 1/9 without the bottleneck.
        let torus = generators::torus(&[3, 3, 3]);
        let aug = HostNicAugmented::build(&torus, 4.0); // 100 Gbps / 25 Gbps = 4 links
        let commodities = CommoditySet::among(aug.hosts.clone());
        let master = solve_master(&aug.graph, &commodities).unwrap();
        assert!(
            (master.flow_value - 2.0 / 27.0).abs() < 1e-4,
            "bottlenecked F = {}, expected 2/27 = {}",
            master.flow_value,
            2.0 / 27.0
        );
    }
}
