//! Shared types: commodity sets, flow solutions and weighted path schedules.

use a2a_topology::{EdgeId, NodeId, Path, Topology};

/// Errors produced by the MCF algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum McfError {
    /// The underlying LP failed (infeasible, unbounded or numerically).
    Lp(String),
    /// The topology cannot support the requested all-to-all (e.g. not strongly
    /// connected, or a commodity endpoint is missing).
    BadTopology(String),
    /// An invalid argument was supplied (e.g. zero steps, empty path set).
    BadArgument(String),
}

impl std::fmt::Display for McfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McfError::Lp(msg) => write!(f, "LP failure: {msg}"),
            McfError::BadTopology(msg) => write!(f, "bad topology: {msg}"),
            McfError::BadArgument(msg) => write!(f, "bad argument: {msg}"),
        }
    }
}

impl std::error::Error for McfError {}

impl From<a2a_lp::LpError> for McfError {
    fn from(e: a2a_lp::LpError) -> Self {
        McfError::Lp(e.to_string())
    }
}

/// Result alias for MCF computations.
pub type McfResult<T> = Result<T, McfError>;

/// The set of commodities of an all-to-all collective: every ordered pair of distinct
/// *endpoint* nodes. Endpoints are usually all nodes of the topology, but can be a
/// subset (e.g. only the host vertices of a [`a2a_topology::transform::HostNicAugmented`]
/// graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommoditySet {
    endpoints: Vec<NodeId>,
}

impl CommoditySet {
    /// All-to-all among nodes `0..n`.
    pub fn all_pairs(n: usize) -> Self {
        Self {
            endpoints: (0..n).collect(),
        }
    }

    /// All-to-all among an explicit list of endpoint nodes.
    ///
    /// # Panics
    /// Panics if the list contains duplicates or fewer than two nodes.
    pub fn among(endpoints: Vec<NodeId>) -> Self {
        assert!(endpoints.len() >= 2, "need at least two endpoints");
        let unique: std::collections::HashSet<_> = endpoints.iter().collect();
        assert_eq!(unique.len(), endpoints.len(), "duplicate endpoints");
        Self { endpoints }
    }

    /// The endpoint nodes.
    pub fn endpoints(&self) -> &[NodeId] {
        &self.endpoints
    }

    /// Number of endpoints.
    pub fn num_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// Number of commodities (`k * (k - 1)`).
    pub fn len(&self) -> usize {
        let k = self.endpoints.len();
        k * (k - 1)
    }

    /// True if there are no commodities (single endpoint).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(source, destination)` pair of commodity `idx`.
    pub fn pair(&self, idx: usize) -> (NodeId, NodeId) {
        let k = self.endpoints.len();
        let s = idx / (k - 1);
        let mut d = idx % (k - 1);
        if d >= s {
            d += 1;
        }
        (self.endpoints[s], self.endpoints[d])
    }

    /// Index of the commodity with the given endpoints, if both are endpoints and
    /// distinct.
    pub fn index_of(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        if src == dst {
            return None;
        }
        let k = self.endpoints.len();
        let s = self.endpoints.iter().position(|&e| e == src)?;
        let d = self.endpoints.iter().position(|&e| e == dst)?;
        let d_adj = if d > s { d - 1 } else { d };
        Some(s * (k - 1) + d_adj)
    }

    /// Iterates `(commodity index, source, destination)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, NodeId, NodeId)> + '_ {
        (0..self.len()).map(move |i| {
            let (s, d) = self.pair(i);
            (i, s, d)
        })
    }
}

/// Per-commodity, per-edge fractional flows plus the concurrent flow value `F`.
///
/// Flow units are "shards per unit time at unit link capacity": a commodity flowing at
/// rate `F` over links of capacity 1 completes one shard every `1/F` time units.
#[derive(Debug, Clone)]
pub struct LinkFlowSolution {
    /// Commodities the flows refer to.
    pub commodities: CommoditySet,
    /// Optimal concurrent flow value `F`.
    pub flow_value: f64,
    /// For each commodity (indexed as in [`CommoditySet`]), the list of `(edge, flow)`
    /// pairs with strictly positive flow.
    pub flows: Vec<Vec<(EdgeId, f64)>>,
}

impl LinkFlowSolution {
    /// Total flow of a commodity over a given edge (0 if absent).
    pub fn flow_on(&self, commodity: usize, edge: EdgeId) -> f64 {
        self.flows[commodity]
            .iter()
            .find(|&&(e, _)| e == edge)
            .map(|&(_, f)| f)
            .unwrap_or(0.0)
    }

    /// Aggregate load per edge (sum over commodities), indexed by [`EdgeId`].
    pub fn edge_loads(&self, topo: &Topology) -> Vec<f64> {
        let mut loads = vec![0.0; topo.num_edges()];
        for per_commodity in &self.flows {
            for &(e, f) in per_commodity {
                loads[e] += f;
            }
        }
        loads
    }

    /// Maximum ratio of edge load to edge capacity.
    pub fn max_link_utilization(&self, topo: &Topology) -> f64 {
        self.edge_loads(topo)
            .iter()
            .enumerate()
            .map(|(e, &load)| load / topo.edge(e).capacity)
            .fold(0.0, f64::max)
    }

    /// Checks approximate flow conservation and demand satisfaction; returns a list of
    /// human-readable violations (empty when the solution is consistent).
    pub fn check_consistency(&self, topo: &Topology, tol: f64) -> Vec<String> {
        let mut issues = Vec::new();
        for (idx, s, d) in self.commodities.iter() {
            let mut balance = vec![0.0f64; topo.num_nodes()];
            for &(e, f) in &self.flows[idx] {
                let edge = topo.edge(e);
                balance[edge.src] -= f;
                balance[edge.dst] += f;
                if f < -tol {
                    issues.push(format!("commodity {s}->{d}: negative flow on edge {e}"));
                }
            }
            if balance[d] + tol < self.flow_value {
                issues.push(format!(
                    "commodity {s}->{d}: delivered {} < F = {}",
                    balance[d], self.flow_value
                ));
            }
            for (u, &b) in balance.iter().enumerate() {
                if u != s && u != d && b < -tol {
                    issues.push(format!(
                        "commodity {s}->{d}: node {u} forwards more than it receives ({b})"
                    ));
                }
            }
        }
        issues
    }
}

/// A weighted multi-path schedule: for each commodity, a set of paths with the fraction
/// of the shard that should travel along each path.
#[derive(Debug, Clone)]
pub struct PathSchedule {
    /// Commodities the schedule covers.
    pub commodities: CommoditySet,
    /// Concurrent flow value `F` achieved by the schedule (in the same units as
    /// [`LinkFlowSolution::flow_value`]); equals `1 / max link load` when weights are
    /// normalised per commodity.
    pub flow_value: f64,
    /// For each commodity, `(path, weight)` pairs. Weights are fractions of the shard
    /// and sum to 1 per commodity (within floating-point tolerance).
    pub paths: Vec<Vec<(Path, f64)>>,
}

impl PathSchedule {
    /// Builds a schedule from raw (possibly unnormalised) path weights, normalising
    /// each commodity's weights to sum to 1.
    ///
    /// # Panics
    /// Panics if some commodity has no paths or non-positive total weight.
    pub fn from_weighted_paths(
        commodities: CommoditySet,
        flow_value: f64,
        raw: Vec<Vec<(Path, f64)>>,
    ) -> Self {
        assert_eq!(raw.len(), commodities.len(), "one path list per commodity");
        let paths = raw
            .into_iter()
            .enumerate()
            .map(|(idx, list)| {
                let total: f64 = list.iter().map(|(_, w)| w).sum();
                let (s, d) = commodities.pair(idx);
                assert!(
                    !list.is_empty() && total > 0.0,
                    "commodity {s}->{d} has no usable paths"
                );
                list.into_iter().map(|(p, w)| (p, w / total)).collect()
            })
            .collect();
        Self {
            commodities,
            flow_value,
            paths,
        }
    }

    /// Number of paths across all commodities.
    pub fn total_paths(&self) -> usize {
        self.paths.iter().map(Vec::len).sum()
    }

    /// Largest number of paths used by any single commodity.
    pub fn max_paths_per_commodity(&self) -> usize {
        self.paths.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks that every path connects its commodity endpoints, lies in `topo`, and
    /// that weights are normalised. Returns human-readable violations.
    pub fn check_consistency(&self, topo: &Topology, tol: f64) -> Vec<String> {
        let mut issues = Vec::new();
        for (idx, s, d) in self.commodities.iter() {
            let mut total = 0.0;
            for (p, w) in &self.paths[idx] {
                total += w;
                if p.source() != s || p.dest() != d {
                    issues.push(format!(
                        "commodity {s}->{d}: path endpoints {}->{} mismatch",
                        p.source(),
                        p.dest()
                    ));
                }
                if !p.is_valid_in(topo) {
                    issues.push(format!("commodity {s}->{d}: path uses a missing edge"));
                }
                if *w <= 0.0 {
                    issues.push(format!("commodity {s}->{d}: non-positive weight {w}"));
                }
            }
            if (total - 1.0).abs() > tol {
                issues.push(format!(
                    "commodity {s}->{d}: weights sum to {total}, expected 1"
                ));
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_topology::generators;

    #[test]
    fn commodity_indexing_roundtrips() {
        let c = CommoditySet::all_pairs(5);
        assert_eq!(c.len(), 20);
        for idx in 0..c.len() {
            let (s, d) = c.pair(idx);
            assert_ne!(s, d);
            assert_eq!(c.index_of(s, d), Some(idx));
        }
        assert_eq!(c.index_of(1, 1), None);
        assert_eq!(c.index_of(0, 9), None);
    }

    #[test]
    fn commodity_subset_uses_listed_endpoints() {
        let c = CommoditySet::among(vec![4, 7, 9]);
        assert_eq!(c.len(), 6);
        assert_eq!(c.num_endpoints(), 3);
        let pairs: Vec<_> = c.iter().map(|(_, s, d)| (s, d)).collect();
        assert!(pairs.contains(&(4, 7)));
        assert!(pairs.contains(&(9, 4)));
        assert!(!pairs.contains(&(4, 4)));
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_endpoints_rejected() {
        CommoditySet::among(vec![1, 2, 1]);
    }

    #[test]
    fn link_flow_edge_loads_and_utilization() {
        let topo = generators::bidirectional_ring(3);
        let commodities = CommoditySet::all_pairs(3);
        let mut flows = vec![Vec::new(); commodities.len()];
        // Commodity 0->1 sends 0.5 along edge (0,1).
        let e01 = topo.find_edge(0, 1).unwrap();
        flows[commodities.index_of(0, 1).unwrap()] = vec![(e01, 0.5)];
        let sol = LinkFlowSolution {
            commodities,
            flow_value: 0.5,
            flows,
        };
        let loads = sol.edge_loads(&topo);
        assert_eq!(loads[e01], 0.5);
        assert_eq!(sol.max_link_utilization(&topo), 0.5);
        assert_eq!(sol.flow_on(0, e01), 0.5);
    }

    #[test]
    fn link_flow_consistency_flags_underdelivery() {
        let topo = generators::bidirectional_ring(3);
        let commodities = CommoditySet::all_pairs(3);
        let flows = vec![Vec::new(); commodities.len()];
        let sol = LinkFlowSolution {
            commodities,
            flow_value: 0.25,
            flows,
        };
        let issues = sol.check_consistency(&topo, 1e-9);
        assert!(!issues.is_empty());
        assert!(issues[0].contains("delivered"));
    }

    #[test]
    fn path_schedule_normalises_weights() {
        let topo = generators::bidirectional_ring(3);
        let commodities = CommoditySet::all_pairs(3);
        let raw: Vec<Vec<(Path, f64)>> = commodities
            .iter()
            .map(|(_, s, d)| {
                let p = a2a_topology::paths::shortest_path(&topo, s, d).unwrap();
                vec![(p, 2.0)]
            })
            .collect();
        let sched = PathSchedule::from_weighted_paths(commodities, 0.5, raw);
        assert!(sched.check_consistency(&topo, 1e-9).is_empty());
        assert_eq!(sched.total_paths(), 6);
        assert_eq!(sched.max_paths_per_commodity(), 1);
        for list in &sched.paths {
            let total: f64 = list.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn path_schedule_consistency_detects_bad_paths() {
        let topo = generators::bidirectional_ring(4);
        let commodities = CommoditySet::all_pairs(3);
        let raw: Vec<Vec<(Path, f64)>> = commodities
            .iter()
            .map(|(_, s, d)| {
                // Deliberately wrong: always the 0->1 path.
                let p = Path::new(vec![0, 1]);
                let _ = (s, d);
                vec![(p, 1.0)]
            })
            .collect();
        let sched = PathSchedule::from_weighted_paths(commodities, 1.0, raw);
        let issues = sched.check_consistency(&topo, 1e-9);
        assert!(issues.iter().any(|m| m.contains("mismatch")));
    }

    #[test]
    fn mcf_error_display() {
        let e = McfError::BadTopology("not connected".into());
        assert!(e.to_string().contains("not connected"));
        let lp_err: McfError = a2a_lp::LpError::Infeasible.into();
        assert!(lp_err.to_string().contains("infeasible"));
    }
}
