//! Schedule-quality metrics used by the evaluation figures.
//!
//! The paper's simulation figures (Figs. 8–10) plot the *all-to-all time*: the time to
//! ship one unit of every commodity, which for a fractional schedule equals the maximum
//! link load (with unit capacities) and `1 / F` for an optimal MCF solution.

use a2a_topology::Topology;

use crate::types::{LinkFlowSolution, PathSchedule};

/// Per-edge load induced by a weighted path schedule when every commodity ships one
/// unit of data, indexed by edge id.
pub fn edge_loads_of_paths(topo: &Topology, schedule: &PathSchedule) -> Vec<f64> {
    let mut loads = vec![0.0; topo.num_edges()];
    for (idx, _, _) in schedule.commodities.iter() {
        for (path, weight) in &schedule.paths[idx] {
            for (u, v) in path.links() {
                let e = topo
                    .find_edge(u, v)
                    .expect("schedule paths must use topology edges");
                loads[e] += weight;
            }
        }
    }
    loads
}

/// Maximum link load (relative to capacity) of a weighted path schedule shipping one
/// unit per commodity.
pub fn max_link_load_of_paths(topo: &Topology, schedule: &PathSchedule) -> f64 {
    edge_loads_of_paths(topo, schedule)
        .iter()
        .enumerate()
        .map(|(e, &load)| load / topo.edge(e).capacity)
        .fold(0.0, f64::max)
}

/// All-to-all completion time of a weighted path schedule (in units of
/// `shard_bytes / link_bandwidth`): the bottleneck link has to carry its entire load.
pub fn path_schedule_all_to_all_time(topo: &Topology, schedule: &PathSchedule) -> f64 {
    max_link_load_of_paths(topo, schedule)
}

/// All-to-all completion time implied by a link-flow solution: `1 / F`.
pub fn link_flow_all_to_all_time(solution: &LinkFlowSolution) -> f64 {
    1.0 / solution.flow_value
}

/// Converts a concurrent flow value into the paper's throughput metric
/// `(N - 1) · F · b`, with `b` given in GB/s.
pub fn throughput_gbps(num_nodes: usize, flow_value: f64, link_bandwidth_gbps: f64) -> f64 {
    crate::bounds::throughput_upper_bound(num_nodes, flow_value, link_bandwidth_gbps)
}

/// The effective concurrent flow value achieved by a path schedule: the rate at which
/// every commodity can ship concurrently without exceeding any link, i.e.
/// `1 / max link load`.
pub fn effective_flow_value(topo: &Topology, schedule: &PathSchedule) -> f64 {
    let load = max_link_load_of_paths(topo, schedule);
    if load <= 0.0 {
        0.0
    } else {
        1.0 / load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CommoditySet;
    use a2a_topology::{generators, paths, Path};

    fn single_path_schedule(topo: &Topology) -> PathSchedule {
        let commodities = CommoditySet::all_pairs(topo.num_nodes());
        let raw: Vec<Vec<(Path, f64)>> = commodities
            .iter()
            .map(|(_, s, d)| vec![(paths::shortest_path(topo, s, d).unwrap(), 1.0)])
            .collect();
        PathSchedule::from_weighted_paths(commodities, 0.0, raw)
    }

    #[test]
    fn loads_on_complete_graph_are_one_per_link() {
        let topo = generators::complete(4);
        let sched = single_path_schedule(&topo);
        let loads = edge_loads_of_paths(&topo, &sched);
        assert!(loads.iter().all(|&l| (l - 1.0).abs() < 1e-12));
        assert!((max_link_load_of_paths(&topo, &sched) - 1.0).abs() < 1e-12);
        assert!((effective_flow_value(&topo, &sched) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn directed_ring_single_path_load_matches_mcf_inverse() {
        let topo = generators::ring(4);
        let sched = single_path_schedule(&topo);
        // Every commodity has exactly one path; the bottleneck link carries
        // 1 + 2 + 3 = 6 units? No: each link carries flows whose shortest path crosses
        // it: for the 4-ring each link is crossed by 6 of the 12 commodities' hops in
        // total: sum of distances 24 / 4 links = 6.
        assert!((max_link_load_of_paths(&topo, &sched) - 6.0).abs() < 1e-12);
        assert!((path_schedule_all_to_all_time(&topo, &sched) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn link_flow_time_is_inverse_of_f() {
        let topo = generators::complete(3);
        let sol = crate::linkmcf::solve_link_mcf(&topo).unwrap();
        assert!((link_flow_all_to_all_time(&sol) - 1.0 / sol.flow_value).abs() < 1e-12);
    }

    #[test]
    fn throughput_conversion_matches_bound() {
        assert_eq!(
            throughput_gbps(27, 1.0 / 9.0, 3.125),
            crate::bounds::throughput_upper_bound(27, 1.0 / 9.0, 3.125)
        );
    }

    #[test]
    fn effective_flow_value_of_empty_load_is_zero() {
        let topo = generators::complete(3);
        // A schedule over a 2-endpoint subset leaves most links unused but still has a
        // positive max load.
        let commodities = CommoditySet::among(vec![0, 1]);
        let raw = vec![
            vec![(Path::new(vec![0, 1]), 1.0)],
            vec![(Path::new(vec![1, 0]), 1.0)],
        ];
        let sched = PathSchedule::from_weighted_paths(commodities, 1.0, raw);
        assert!(effective_flow_value(&topo, &sched) > 0.0);
    }
}
