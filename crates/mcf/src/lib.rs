//! # a2a-mcf
//!
//! Multi-commodity-flow synthesis of all-to-all collective communication schedules —
//! the primary contribution of "Efficient all-to-all Collective Communication Schedules
//! for Direct-connect Topologies" (HPDC 2024).
//!
//! The crate contains one module per formulation in §3 of the paper plus the analysis
//! helpers used throughout the evaluation:
//!
//! * [`types`] — commodity sets, link-flow solutions, weighted path schedules and
//!   time-stepped flow solutions shared by every algorithm.
//! * [`linkmcf`] — the original link-variable max-concurrent MCF (§3.1.1), one LP with
//!   `O(N³)` variables.
//! * [`decomposed`] — the paper's scalability contribution (§3.1.2): a master
//!   source-grouped LP with `O(N²)` variables followed by `N` independent child LPs
//!   (parallelised with rayon) that recover per-commodity flows.
//! * [`tsmcf`] — the time-stepped MCF over a time-expanded graph (§3.1.3) used for
//!   store-and-forward (ML accelerator) fabrics, including the host-bottleneck variant
//!   of Fig. 2. This is the dense edge formulation: one flow variable per
//!   (commodity, expanded edge), conservation `out ≤ in`, minimize `Σ_t U_t`.
//! * [`pmcf`] — the path-variable MCF (§3.1.4) over explicit candidate path sets
//!   (edge-disjoint, shortest, bounded length), plus restricted-master column
//!   generation ([`pmcf::solve_path_mcf_colgen_among`]) that grows the path set
//!   adaptively by dual-cost shortest-path pricing and certifies optimality of
//!   the unrestricted path LP on any topology.
//! * [`colgen`] — the column-generation engine shared by `pmcf`, `tscolgen`,
//!   and `residual`: the generic round loop ([`colgen::run_colgen`]) over a
//!   [`colgen::PricingOracle`], with dual stabilization (Wentges smoothing),
//!   drift-based partial pricing, deterministic multi-threaded pricing, and
//!   column-pool aging. The certificate invariant lives in its module docs.
//! * [`tscolgen`] — tsMCF solved by column generation over **delivery-exact
//!   time-expanded path columns**: every column is a whole `(0, s) → (steps, d)`
//!   path of the time-expanded graph, so solutions conserve flow exactly and
//!   carry zero undelivered "junk" flow by construction
//!   ([`tsmcf::TsMcfSolution::pruned`] is a structural no-op on this backend).
//!   One Dijkstra tree per source over per-(edge, step) dual costs prices a
//!   commodity's whole time horizon in one run; on the hardest time-expanded
//!   LPs (huge degenerate plateaus) this is orders of magnitude faster than the
//!   dense formulation. See the [`tscolgen`] module docs for when to pick dense
//!   vs. colgen; [`tsmcf::solve_tsmcf_among_with`] auto-dispatches between the
//!   two by instance size.
//! * [`residual`] — re-planning after a mid-run failure: a snapshot of where
//!   the bytes are becomes a list of [`residual::TsDemand`]s solved on the
//!   punctured topology by the same delivery-exact column generation,
//!   warm-started from the nominal solve's incumbent column pool
//!   ([`tscolgen::TsColumn`]).
//! * [`extract`] — widest-path extraction (MCF-extP, §3.2.1) that converts link flows
//!   into weighted path schedules for source-routed fabrics.
//! * [`bounds`] — the analytic throughput upper bound and the Theorem-1 lower bound on
//!   all-to-all completion time.
//! * [`analysis`] — schedule-quality metrics (max link load, all-to-all time,
//!   throughput conversion) used by the figures.

pub mod analysis;
pub mod bounds;
pub mod colgen;
pub mod decomposed;
pub mod extract;
pub mod linkmcf;
pub mod pmcf;
pub mod report;
pub mod residual;
pub mod tscolgen;
pub mod tsmcf;
pub mod types;

pub use analysis::{max_link_load_of_paths, path_schedule_all_to_all_time, throughput_gbps};
pub use bounds::{lower_bound_all_to_all_time, throughput_upper_bound};
pub use colgen::{
    run_colgen, Candidate, ColGenOptions, ColGenRound, ColGenSeed, ColGenStats, PricingOracle,
    Stabilization,
};
pub use decomposed::{
    solve_decomposed_mcf, solve_decomposed_mcf_with, DecomposedMcf, DecomposedOptions,
    DecomposedTimings,
};
pub use extract::extract_widest_paths;
pub use linkmcf::solve_link_mcf;
pub use pmcf::{
    solve_path_mcf, solve_path_mcf_colgen, solve_path_mcf_colgen_among, ColGenPathMcf, PathSetKind,
};
pub use residual::{
    residual_minimum_steps, solve_residual_colgen, warm_seeds_from_columns, ResidualColGen,
    ResidualSolution, TsDemand,
};
pub use tscolgen::{
    solve_tsmcf_colgen, solve_tsmcf_colgen_among, solve_tsmcf_colgen_among_with,
    solve_tsmcf_colgen_auto, TsColGen, TsColumn,
};
pub use tsmcf::{
    solve_tsmcf, solve_tsmcf_among, solve_tsmcf_among_dense, solve_tsmcf_among_dense_with,
    solve_tsmcf_among_with, solve_tsmcf_auto, TsMcfSolution, DENSE_COLGEN_CUTOVER_VARS,
};
pub use types::{CommoditySet, LinkFlowSolution, McfError, McfResult, PathSchedule};
