//! Cross-backend and solver→schedule→simulator integration suite.
//!
//! Pins the three contracts the event-driven engine ships with:
//!
//! 1. **Backend equality** — on nominal fabrics without injection/QP limits, the
//!    event engine in synchronized mode agrees with the closed-form analytic model to
//!    round-off, on every topology family we evaluate (including seeded random
//!    regular graphs).
//! 2. **LP-bound agreement** — on contention-free (nominal) fabrics the simulated
//!    completion matches the tsMCF-predicted bound
//!    `Σ_t U_t · m / b + steps · α` within the chunk-quantization tolerance.
//! 3. **Degradation end-to-end** — link slowdowns stretch completion by the expected
//!    factor, and a failed link first breaks the stale schedule, then a schedule
//!    re-solved on the punctured topology runs to completion under the same failure
//!    scenario.

use a2a_mcf::tsmcf::solve_tsmcf_auto;
use a2a_schedule::ChunkedSchedule;
use a2a_simnet::{
    simulate_chunked_event, AnalyticBackend, EventBackend, EventSimOptions, ExecutionModel,
    Scenario, ScheduleSimulator, SimError, SimParams,
};
use a2a_topology::{generators, Topology};

/// Chunk cap used throughout: fine enough that quantization error stays small.
const CHUNK_CAP: usize = 128;

fn families() -> Vec<Topology> {
    let mut topos = vec![
        generators::complete(4),
        generators::bidirectional_ring(5),
        generators::hypercube(3),
        generators::torus(&[3, 3]),
    ];
    // Seeded family: random regular graphs (skip seeds that happen to be disconnected
    // — the generator does not guarantee strong connectivity for every seed).
    for seed in [1u64, 7, 42] {
        let t = generators::random_regular(8, 3, seed);
        if t.is_strongly_connected() {
            topos.push(t);
        }
    }
    assert!(topos.len() >= 5, "expected at least five test topologies");
    topos
}

fn schedule_for(topo: &Topology) -> ChunkedSchedule {
    let sol = solve_tsmcf_auto(topo).expect("tsMCF solves on connected topologies");
    ChunkedSchedule::from_tsmcf(topo, &sol, CHUNK_CAP).expect("chunking succeeds")
}

#[test]
fn analytic_and_event_backends_agree_on_contention_free_schedules() {
    let params = SimParams::default(); // no injection cap, no QP contention
    let analytic = AnalyticBackend {
        params: params.clone(),
        scenario: Scenario::nominal(),
    };
    let event = EventBackend {
        params: params.clone(),
        options: EventSimOptions::default(), // synchronized
    };
    for topo in families() {
        let sched = schedule_for(&topo);
        for shard in [2048.0, 1024.0 * 1024.0, 32.0 * 1024.0 * 1024.0] {
            let a = analytic.simulate(&topo, &sched, shard).unwrap();
            let b = event.simulate(&topo, &sched, shard).unwrap();
            let rel = (a.completion_seconds - b.completion_seconds).abs() / a.completion_seconds;
            assert!(
                rel < 1e-9,
                "{} @ {shard}B: analytic {} vs event {}",
                topo.name(),
                a.completion_seconds,
                b.completion_seconds
            );
            assert!((a.throughput_gbps - b.throughput_gbps).abs() < 1e-6 * a.throughput_gbps);
        }
    }
}

#[test]
fn event_sim_matches_the_lp_predicted_bound() {
    let params = SimParams::default();
    let shard = 64.0 * 1024.0 * 1024.0;
    for topo in families() {
        let sol = solve_tsmcf_auto(&topo).unwrap();
        // Lowering and prediction both derive from the same pruned solution — the
        // flow the schedule actually executes. Quantize at a fixed fine granularity:
        // the coarsest-valid granularity that `from_tsmcf` picks is executable but
        // can inflate link loads by a whole chunk per transfer, which is fidelity
        // noise this comparison must exclude.
        let pruned = sol.pruned(&topo);
        let sched = ChunkedSchedule::from_tsmcf_exact(&topo, &pruned, CHUNK_CAP).unwrap();
        // Pruning can only strip undelivered junk, so the executed prediction never
        // exceeds the raw LP bound (asserted): matching it is matching the LP.
        let lp_bound = sol.predicted_completion_seconds(
            shard,
            params.link_bandwidth_gbps,
            params.step_sync_latency_s,
        );
        let predicted = pruned.predicted_completion_seconds(
            shard,
            params.link_bandwidth_gbps,
            params.step_sync_latency_s,
        );
        assert!(
            predicted <= lp_bound + 1e-9,
            "{}: pruned prediction {predicted} exceeds the LP bound {lp_bound}",
            topo.name()
        );
        let simulated =
            simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                .unwrap();
        let ratio = simulated.report.completion_seconds / predicted;
        // Chunk quantization rounds each transfer to the nearest 1/128 shard, so the
        // simulated completion tracks the fractional LP bound to that margin on both
        // sides (measured: within 1% across all families once undelivered junk flow
        // is pruned from the tsMCF vertex). Same window as the perf harness's
        // quick-tier sim smoke gate.
        let (lo, hi) = a2a_simnet::SIM_VS_LP_AGREEMENT_WINDOW;
        assert!(
            ratio >= lo,
            "{}: simulated {} far below the LP bound {predicted}",
            topo.name(),
            simulated.report.completion_seconds
        );
        assert!(
            ratio <= hi,
            "{}: simulated {} vs LP bound {predicted} (ratio {ratio:.4})",
            topo.name(),
            simulated.report.completion_seconds
        );
    }
}

#[test]
fn link_slowdown_scenario_end_to_end() {
    // Solver → chunked schedule → simulation, nominal vs a degraded link.
    let topo = generators::torus(&[3, 3]);
    let sched = schedule_for(&topo);
    let params = SimParams::default();
    let shard = 8.0 * 1024.0 * 1024.0;
    let nominal =
        simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default()).unwrap();
    // Degrade the busiest link by 4x.
    let busiest = nominal
        .per_link
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.bytes.partial_cmp(&b.1.bytes).unwrap())
        .map(|(e, _)| e)
        .unwrap();
    for model in [
        ExecutionModel::Synchronized,
        ExecutionModel::DependencyDriven,
    ] {
        let degraded = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &EventSimOptions {
                model,
                scenario: Scenario::nominal().with_link_slowdown(busiest, 0.25),
            },
        )
        .unwrap();
        let baseline = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &EventSimOptions {
                model,
                scenario: Scenario::nominal(),
            },
        )
        .unwrap();
        assert!(
            degraded.report.completion_seconds > baseline.report.completion_seconds,
            "{model:?}: degraded {} vs baseline {}",
            degraded.report.completion_seconds,
            baseline.report.completion_seconds
        );
        // The slowdown cannot stretch the run by more than the slowdown factor.
        assert!(
            degraded.report.completion_seconds <= baseline.report.completion_seconds * 4.0 + 1e-9,
            "{model:?}: degraded {} vs baseline {}",
            degraded.report.completion_seconds,
            baseline.report.completion_seconds
        );
    }
}

#[test]
fn link_failure_with_rerouted_schedule_end_to_end() {
    let topo = generators::torus(&[3, 3]);
    let stale = schedule_for(&topo);
    let params = SimParams::default();
    let shard = 4.0 * 1024.0 * 1024.0;
    let nominal =
        simulate_chunked_event(&topo, &stale, shard, &params, &EventSimOptions::default()).unwrap();
    // Fail a link the stale schedule uses.
    let used = nominal
        .per_link
        .iter()
        .position(|l| l.bytes > 0.0)
        .expect("schedule uses some link");
    let scenario = Scenario::nominal().with_failed_link(used);

    // The stale schedule cannot execute — both backends agree on the refusal.
    let err = simulate_chunked_event(
        &topo,
        &stale,
        shard,
        &params,
        &EventSimOptions {
            scenario: scenario.clone(),
            ..EventSimOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::FailedLink { .. }), "{err}");
    let analytic = AnalyticBackend {
        params: params.clone(),
        scenario: scenario.clone(),
    };
    assert!(matches!(
        analytic.simulate(&topo, &stale, shard).unwrap_err(),
        SimError::FailedLink { .. }
    ));

    // Re-solve on the punctured topology and execute the rerouted schedule under the
    // same failure scenario (ranks and the surviving links are unchanged).
    let punctured = topo.without_edges(&[used]);
    assert!(punctured.is_strongly_connected());
    let rerouted_sol = solve_tsmcf_auto(&punctured).unwrap();
    let rerouted = ChunkedSchedule::from_tsmcf(&punctured, &rerouted_sol, CHUNK_CAP).unwrap();
    for model in [
        ExecutionModel::Synchronized,
        ExecutionModel::DependencyDriven,
    ] {
        let report = simulate_chunked_event(
            &topo,
            &rerouted,
            shard,
            &params,
            &EventSimOptions {
                model,
                scenario: scenario.clone(),
            },
        )
        .unwrap();
        assert!(report.report.completion_seconds > 0.0);
        assert_eq!(
            report.per_link[used].bytes, 0.0,
            "reroute avoids the failure"
        );
        // Nine nodes still exchange (N-1) shards each; the degraded fabric cannot be
        // faster than the nominal one under the synchronized model.
        if model == ExecutionModel::Synchronized {
            assert!(
                report.report.completion_seconds >= nominal.report.completion_seconds * 0.999,
                "{model:?}: rerouted {} vs nominal {}",
                report.report.completion_seconds,
                nominal.report.completion_seconds
            );
        }
    }
}

#[test]
fn seeded_degradations_run_end_to_end() {
    // Seeded slowdown scenarios execute and only ever stretch completion.
    let topo = generators::hypercube(3);
    let sched = schedule_for(&topo);
    let params = SimParams::default();
    let shard = 1024.0 * 1024.0;
    let nominal =
        simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default()).unwrap();
    for seed in 0..4u64 {
        let scenario = Scenario::seeded_slowdowns(&topo, seed, 4, 0.25, 0.9);
        let degraded = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &EventSimOptions {
                scenario,
                ..EventSimOptions::default()
            },
        )
        .unwrap();
        assert!(
            degraded.report.completion_seconds >= nominal.report.completion_seconds - 1e-12,
            "seed {seed}: degraded {} vs nominal {}",
            degraded.report.completion_seconds,
            nominal.report.completion_seconds
        );
    }
}

/// Per-message α jitter, end to end: the jittered run is reproducible, bounded
/// by the jitter range applied to the α terms, and the analytic model stays
/// equal to the synchronized event engine under the *same* jittered scenario
/// (both charge each step its slowest message's launch factor, keyed by the
/// step-major message id).
#[test]
fn alpha_jitter_is_seeded_and_backends_stay_equal() {
    let params = SimParams::default();
    // Latency-bound shard size so the α terms dominate and the jitter is visible.
    let shard = 2048.0;
    for topo in [generators::hypercube(3), generators::torus(&[3, 3])] {
        let sched = schedule_for(&topo);
        let jitter = Scenario::nominal().with_alpha_jitter(7, 1.5, 3.0);
        let sync_opts = |scenario: Scenario| EventSimOptions {
            model: ExecutionModel::Synchronized,
            scenario,
        };

        let nominal = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &sync_opts(Scenario::nominal()),
        )
        .unwrap();
        let jittered =
            simulate_chunked_event(&topo, &sched, shard, &params, &sync_opts(jitter.clone()))
                .unwrap();
        let again =
            simulate_chunked_event(&topo, &sched, shard, &params, &sync_opts(jitter.clone()))
                .unwrap();
        assert_eq!(
            jittered.report.completion_seconds,
            again.report.completion_seconds,
            "{}: same seed must reproduce exactly",
            topo.name()
        );
        // Factors in [1.5, 3.0] stretch every step's α by at least 1.5x and at
        // most 3x; the bandwidth term is untouched.
        let steps = sched.num_steps() as f64;
        let extra = jittered.report.completion_seconds - nominal.report.completion_seconds;
        assert!(
            extra >= 0.5 * steps * params.step_sync_latency_s - 1e-12
                && extra <= 2.0 * steps * params.step_sync_latency_s + 1e-12,
            "{}: jitter added {extra}s over {steps} steps",
            topo.name()
        );

        // Backend equality must survive the jittered scenario.
        let analytic = AnalyticBackend {
            params: params.clone(),
            scenario: jitter.clone(),
        };
        let a = analytic.simulate(&topo, &sched, shard).unwrap();
        let rel = (a.completion_seconds - jittered.report.completion_seconds).abs()
            / a.completion_seconds;
        assert!(
            rel < 1e-9,
            "{}: analytic {} vs event {} under jitter",
            topo.name(),
            a.completion_seconds,
            jittered.report.completion_seconds
        );

        // The dependency-driven model charges α per message: jitter must slow
        // it too, and a different seed draws a different execution.
        let dep_opts = |scenario: Scenario| EventSimOptions {
            model: ExecutionModel::DependencyDriven,
            scenario,
        };
        let dep_nominal = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &dep_opts(Scenario::nominal()),
        )
        .unwrap();
        let dep_jittered =
            simulate_chunked_event(&topo, &sched, shard, &params, &dep_opts(jitter.clone()))
                .unwrap();
        assert!(
            dep_jittered.report.completion_seconds > dep_nominal.report.completion_seconds,
            "{}: dependency-driven jitter {} must exceed nominal {}",
            topo.name(),
            dep_jittered.report.completion_seconds,
            dep_nominal.report.completion_seconds
        );
        let other_seed = Scenario::nominal().with_alpha_jitter(8, 1.5, 3.0);
        let dep_other =
            simulate_chunked_event(&topo, &sched, shard, &params, &dep_opts(other_seed)).unwrap();
        assert_ne!(
            dep_jittered.report.completion_seconds,
            dep_other.report.completion_seconds,
            "{}: different jitter seeds should differ",
            topo.name()
        );
    }
}

/// tsMCF column generation feeds the same lowering and simulation pipeline as
/// the dense solver: colgen solutions are delivery-exact (no pruning pass), so
/// `from_tsmcf_exact` lowers them directly, the synchronized engine lands
/// within quantization tolerance of the LP-predicted bound, and both backends
/// agree on the result.
#[test]
fn tsmcf_colgen_schedules_execute_and_validate_like_dense() {
    use a2a_mcf::tscolgen::solve_tsmcf_colgen_auto;
    let params = SimParams::default();
    let shard = 64.0 * 1024.0 * 1024.0;
    for topo in families() {
        let cg = solve_tsmcf_colgen_auto(&topo).expect("colgen tsMCF solves");
        assert!(
            cg.stats.proved_optimal,
            "{}: colgen certificate missing",
            topo.name()
        );
        // Delivery-exact: no pruning pass before lowering.
        let sched = ChunkedSchedule::from_tsmcf_exact(&topo, &cg.solution, CHUNK_CAP)
            .expect("colgen solutions lower without pruning");
        assert!(sched.validate(&topo).is_empty());
        let predicted = cg.solution.predicted_completion_seconds(
            shard,
            params.link_bandwidth_gbps,
            params.step_sync_latency_s,
        );
        let simulated =
            simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                .unwrap();
        let ratio = simulated.report.completion_seconds / predicted;
        let (lo, hi) = a2a_simnet::SIM_VS_LP_AGREEMENT_WINDOW;
        assert!(
            (lo..=hi).contains(&ratio),
            "{}: simulated {} vs LP bound {predicted} (ratio {ratio:.4})",
            topo.name(),
            simulated.report.completion_seconds
        );
        // Cross-backend equality holds for colgen-lowered schedules too.
        let analytic = AnalyticBackend {
            params: params.clone(),
            scenario: Scenario::nominal(),
        };
        let a = analytic.simulate(&topo, &sched, shard).unwrap();
        let rel = (a.completion_seconds - simulated.report.completion_seconds).abs()
            / a.completion_seconds;
        assert!(rel < 1e-9, "{}: analytic vs event mismatch", topo.name());
    }
}
