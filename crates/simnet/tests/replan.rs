//! End-to-end closed-loop re-planning suite.
//!
//! Pins the full digital-twin loop on real topologies: a schedule-carrying
//! link dies mid-run, the driver snapshots, re-solves the residual on the
//! punctured fabric (warm-started from the nominal incumbent columns), splices
//! and resumes. The suite checks the three contracts of the loop:
//!
//! * **Quality** — the replanned makespan stays within 1.10x of the
//!   *clairvoyant* schedule (a full re-solve on the punctured topology, as if
//!   the failure had been known before the run started), and the warm-started
//!   residual solve spends fewer master simplex iterations than the cold
//!   clairvoyant solve.
//! * **Splice invariants** — across seeded failure sweeps, every repaired
//!   schedule passes full [`ChunkedSchedule::validate`], its realized route
//!   table passes [`RouteTable::validate`] (every commodity delivers exactly
//!   one shard across the prefix/suffix boundary), and every in-flight
//!   snapshot conserves chunks and bytes exactly.
//! * **Graceful infeasibility** — a failure that disconnects a destination is
//!   a typed [`ReplanError::UnreachableDestination`], never a panic and never
//!   silent byte loss.

use a2a_mcf::{solve_tsmcf_colgen_auto, CommoditySet};
use a2a_schedule::{realized_route_table, ChunkedSchedule};
use a2a_simnet::{
    replan_run, simulate_chunked_timeline, ExecutionModel, IncumbentPool, ReplanError,
    ReplanOptions, Scenario, ScenarioTimeline, SimParams, TimelineRun,
};
use a2a_topology::{generators, Topology};

const SHARD_BYTES: f64 = 64.0 * 1024.0 * 1024.0;
const CHUNKS_PER_SHARD: usize = 8;

struct Nominal {
    schedule: ChunkedSchedule,
    pool: IncumbentPool,
    completion_seconds: f64,
}

/// Solves the nominal all-to-all, quantizes it, and measures its failure-free
/// completion time under the event engine.
fn nominal_plan(topo: &Topology, params: &SimParams) -> Nominal {
    let cg = solve_tsmcf_colgen_auto(topo).expect("nominal solve");
    let schedule = ChunkedSchedule::from_tsmcf_exact(topo, &cg.solution, CHUNKS_PER_SHARD)
        .expect("nominal schedule quantizes");
    let pool = IncumbentPool {
        columns: cg.columns,
        commodities: cg.solution.commodities.clone(),
        steps: cg.solution.steps,
    };
    let run = simulate_chunked_timeline(
        topo,
        &schedule,
        SHARD_BYTES,
        params,
        &ScenarioTimeline::nominal(),
        ExecutionModel::Synchronized,
    )
    .expect("nominal run");
    let completion_seconds = match run {
        TimelineRun::Completed(r) => r.report.completion_seconds,
        TimelineRun::Interrupted(_) => unreachable!("no events on the nominal timeline"),
    };
    Nominal {
        schedule,
        pool,
        completion_seconds,
    }
}

/// The clairvoyant benchmark: a cold full re-solve on the punctured topology
/// (the failure known before the run), simulated failure-free. Returns the
/// makespan and the cold solve's master iteration count.
fn clairvoyant(punctured: &Topology, params: &SimParams) -> (f64, usize) {
    let cg = solve_tsmcf_colgen_auto(punctured).expect("clairvoyant solve");
    let iterations = cg.stats.total_master_iterations();
    let schedule = ChunkedSchedule::from_tsmcf_exact(punctured, &cg.solution, CHUNKS_PER_SHARD)
        .expect("clairvoyant schedule quantizes");
    let run = simulate_chunked_timeline(
        punctured,
        &schedule,
        SHARD_BYTES,
        params,
        &ScenarioTimeline::nominal(),
        ExecutionModel::Synchronized,
    )
    .expect("clairvoyant run");
    match run {
        TimelineRun::Completed(r) => (r.report.completion_seconds, iterations),
        TimelineRun::Interrupted(_) => unreachable!("no events on the clairvoyant timeline"),
    }
}

/// Runs the pinned mid-run-failure contract on one topology: kill a
/// schedule-carrying link at `when` times the nominal makespan, replan, and
/// check completion, quality vs the clairvoyant, and warm-vs-cold solve cost.
fn pinned_failure_contract(topo: &Topology, when: f64) {
    let params = SimParams::gpu_testbed();
    let nominal = nominal_plan(topo, &params);
    // The first transfer of the first step is on the critical path by
    // construction: killing it strands in-flight chunks.
    let tr = &nominal.schedule.steps[0].transfers[0];
    let edge = topo
        .find_edge(tr.from, tr.to)
        .expect("transfer uses a link");
    let timeline = ScenarioTimeline::new(Scenario::nominal())
        .with_link_failure_at(when * nominal.completion_seconds, edge);

    let run = replan_run(
        topo,
        &nominal.schedule,
        SHARD_BYTES,
        &params,
        &timeline,
        Some(&nominal.pool),
        &ReplanOptions::default(),
    )
    .expect("replan completes");
    assert_eq!(run.attempts.len(), 1, "single failure, single repair");
    let attempt = &run.attempts[0];
    assert!(!attempt.used_fallback, "LP repair expected on this fabric");
    assert!(
        attempt.proved_optimal,
        "residual solve certifies optimality"
    );
    assert!(attempt.warm_seeds > 0, "incumbent suffixes survive the cut");
    assert!(run.schedule.validate(topo).is_empty());

    let punctured = topo.without_edges(&[edge]);
    let (t_clair, cold_iterations) = clairvoyant(&punctured, &params);
    let t_replanned = run.completion_seconds();
    assert!(
        t_replanned <= 1.10 * t_clair,
        "replanned makespan {t_replanned:.6}s exceeds 1.10x clairvoyant {t_clair:.6}s"
    );
    assert!(
        attempt.master_iterations < cold_iterations,
        "warm residual ({} iterations) should beat the cold clairvoyant ({})",
        attempt.master_iterations,
        cold_iterations,
    );
}

// The failure instant, as a fraction of the nominal makespan. Late enough that
// the executed prefix has delivered real work (so the residual problem is
// strictly smaller than the clairvoyant's full all-to-all — the regime where
// online re-planning beats re-solving from scratch), early enough that plenty
// of chunks are still in flight when the link dies.
const FAILURE_FRACTION: f64 = 0.7;

#[test]
fn torus_mid_run_failure_stays_within_clairvoyant_budget() {
    pinned_failure_contract(&generators::torus(&[3, 3]), FAILURE_FRACTION);
}

#[test]
fn random_regular_mid_run_failure_stays_within_clairvoyant_budget() {
    pinned_failure_contract(&generators::random_regular(10, 3, 7), FAILURE_FRACTION);
}

/// Seeded sweep of failure instants and links: every repaired schedule passes
/// the full schedule validator and its realized route table passes the route
/// validator — i.e. every commodity delivers exactly one shard across the
/// prefix/suffix boundary, on surviving links only.
#[test]
fn splice_invariants_hold_across_seeded_failure_sweep() {
    let topo = generators::torus(&[3, 3]);
    let params = SimParams::gpu_testbed();
    let nominal = nominal_plan(&topo, &params);
    let commodities = CommoditySet::all_pairs(topo.num_nodes());
    let transfers: Vec<_> = nominal
        .schedule
        .steps
        .iter()
        .flat_map(|s| s.transfers.iter().cloned())
        .collect();
    for seed in 0..6u64 {
        // Seeded but deterministic pick of a schedule-carrying link and a
        // failure instant in (0.15, 0.9) of the nominal makespan.
        let tr = &transfers[(seed as usize * 31) % transfers.len()];
        let edge = topo.find_edge(tr.from, tr.to).unwrap();
        let frac = 0.15 + 0.125 * seed as f64;
        let timeline = ScenarioTimeline::new(Scenario::nominal())
            .with_link_failure_at(frac * nominal.completion_seconds, edge);
        let run = replan_run(
            &topo,
            &nominal.schedule,
            SHARD_BYTES,
            &params,
            &timeline,
            Some(&nominal.pool),
            &ReplanOptions::default(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: replan failed: {e}"));
        let issues = run.schedule.validate(&topo);
        assert!(issues.is_empty(), "seed {seed}: {issues:?}");
        // The realized per-chunk route table proves every commodity delivered
        // exactly one shard end-to-end across the splice boundary.
        let routes = realized_route_table(&run.schedule, &commodities)
            .unwrap_or_else(|e| panic!("seed {seed}: route extraction failed: {e}"));
        let route_issues = routes.validate();
        assert!(route_issues.is_empty(), "seed {seed}: {route_issues:?}");
        // And no repaired suffix step uses the dead link.
        let suffix_steps = run.attempts.last().unwrap().suffix_steps;
        for step in &run.schedule.steps[run.schedule.num_steps() - suffix_steps..] {
            for t in &step.transfers {
                assert!(
                    (t.from, t.to) != (tr.from, tr.to),
                    "seed {seed}: suffix rides the dead link"
                );
            }
        }
    }
}

/// Byte and chunk conservation of the in-flight snapshot, at failure instants
/// spanning the whole run: delivered + buffered + stranded chunks account for
/// every chunk, and delivered + buffered + stranded + in-flight bytes account
/// for every byte. Nothing is silently lost at any event time.
#[test]
fn snapshots_conserve_chunks_and_bytes_at_every_event_time() {
    let topo = generators::torus(&[3, 3]);
    let params = SimParams::gpu_testbed();
    let nominal = nominal_plan(&topo, &params);
    let tr = &nominal.schedule.steps[0].transfers[0];
    let edge = topo.find_edge(tr.from, tr.to).unwrap();
    let mut interruptions = 0;
    for i in 1..10 {
        let frac = i as f64 / 10.0;
        let timeline = ScenarioTimeline::new(Scenario::nominal())
            .with_link_failure_at(frac * nominal.completion_seconds, edge);
        let run = simulate_chunked_timeline(
            &topo,
            &nominal.schedule,
            SHARD_BYTES,
            &params,
            &timeline,
            ExecutionModel::Synchronized,
        )
        .expect("timeline run");
        let snap = match run {
            TimelineRun::Interrupted(snap) => snap,
            TimelineRun::Completed(_) => continue,
        };
        interruptions += 1;
        assert_eq!(
            snap.delivered_chunks + snap.buffered_chunks + snap.stranded_chunks,
            snap.total_chunks(),
            "chunk conservation at t = {frac} of the nominal makespan"
        );
        let accounted =
            snap.delivered_bytes + snap.buffered_bytes + snap.stranded_bytes + snap.in_flight_bytes;
        let total = snap.total_bytes();
        assert!(
            (accounted - total).abs() <= 1e-6 * total,
            "byte conservation at t = {frac}: accounted {accounted} of {total}"
        );
        // Holdings agree with the aggregate counters: every chunk (stranded
        // ones included — they sit whole at their sender) has a holding.
        let held: usize = snap.holdings.iter().map(|h| h.chunks).sum();
        assert_eq!(held, snap.total_chunks());
        let stranded: usize = snap.holdings.iter().map(|h| h.stranded_chunks).sum();
        assert_eq!(stranded, snap.stranded_chunks);
    }
    assert!(
        interruptions >= 5,
        "the sweep should interrupt the run at several instants, got {interruptions}"
    );
}

/// A failure that disconnects a destination is reported as the typed
/// [`ReplanError::UnreachableDestination`] — with the stuck chunks counted,
/// not silently dropped — and never panics.
#[test]
fn disconnecting_failure_is_a_typed_error_with_no_silent_loss() {
    let topo = generators::ring(4);
    let params = SimParams::gpu_testbed();
    let nominal = nominal_plan(&topo, &params);
    // The directed ring has exactly one path between any pair: killing any
    // schedule-carrying link mid-run disconnects every destination behind it.
    let tr = &nominal.schedule.steps[0].transfers[0];
    let edge = topo.find_edge(tr.from, tr.to).unwrap();
    let timeline = ScenarioTimeline::new(Scenario::nominal())
        .with_link_failure_at(0.3 * nominal.completion_seconds, edge);
    let err = replan_run(
        &topo,
        &nominal.schedule,
        SHARD_BYTES,
        &params,
        &timeline,
        Some(&nominal.pool),
        &ReplanOptions::default(),
    )
    .expect_err("a disconnected destination cannot be repaired");
    match err {
        ReplanError::UnreachableDestination { chunks, .. } => {
            assert!(chunks > 0, "the stuck chunks are accounted for");
        }
        other => panic!("expected UnreachableDestination, got {other}"),
    }
}
