//! Store-and-forward execution of time-stepped (link-based) schedules.
//!
//! Every communication step is globally synchronized: its duration is the transfer
//! time of the busiest link plus a synchronization latency. This mirrors how the
//! MSCCL / oneCCL interpreters execute the lowered XML programs (§4), and it is why
//! link-based schedules pay a latency penalty at small buffer sizes in Fig. 4.

use a2a_mcf::tsmcf::TsMcfSolution;
use a2a_schedule::ChunkedSchedule;
use a2a_topology::Topology;

use crate::{Scenario, SimError, SimParams, SimReport, SimResult};

/// Simulates a fractional time-stepped schedule directly (amounts are fractions of a
/// shard per commodity).
pub fn simulate_link_schedule(
    topo: &Topology,
    schedule: &TsMcfSolution,
    shard_bytes: f64,
    params: &SimParams,
) -> SimReport {
    let mut completion = 0.0f64;
    for step in 0..schedule.steps {
        let mut per_link_bytes = vec![0.0f64; topo.num_edges()];
        for (_, e, amount) in schedule.transfers_at_step(step) {
            per_link_bytes[e] += amount * shard_bytes;
        }
        let busiest = per_link_bytes
            .iter()
            .enumerate()
            .map(|(e, &bytes)| bytes / (params.link_bandwidth_gbps * 1e9 * topo.edge(e).capacity))
            .fold(0.0, f64::max);
        completion += busiest + params.step_sync_latency_s;
    }
    SimReport::new(
        schedule.commodities.num_endpoints(),
        shard_bytes,
        completion,
    )
}

/// Simulates a chunked schedule (whole-chunk transfers, as lowered to MSCCL / oneCCL)
/// on the nominal fabric.
///
/// # Panics
/// Panics if a transfer uses a link missing from `topo` — run
/// [`ChunkedSchedule::validate`] first, or use [`simulate_chunked_schedule_with`] for
/// a `Result`.
pub fn simulate_chunked_schedule(
    topo: &Topology,
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    params: &SimParams,
) -> SimReport {
    simulate_chunked_schedule_with(topo, schedule, shard_bytes, params, &Scenario::nominal())
        .expect("nominal scenario on a validated schedule cannot fail")
}

/// Scenario-aware variant of [`simulate_chunked_schedule`]: link bandwidth overrides,
/// slowdowns and straggler factors reshape each step's busiest-link time; a transfer
/// over a failed (or missing) link is an error.
pub fn simulate_chunked_schedule_with(
    topo: &Topology,
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    params: &SimParams,
    scenario: &Scenario,
) -> SimResult<SimReport> {
    let chunk_bytes = shard_bytes / schedule.chunks_per_shard as f64;
    let mut completion = 0.0f64;
    // Message ids are step-major transfer order — the same identity the event
    // engine keys per-message α jitter on, which keeps the two backends equal
    // under jittered scenarios.
    let mut message_id = 0usize;
    for (si, step) in schedule.steps.iter().enumerate() {
        let mut per_link_chunks: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        // A synchronized step's α is stretched by its slowest message's jitter.
        let mut step_alpha_factor = 1.0f64;
        for t in &step.transfers {
            let e = topo.find_edge(t.from, t.to).ok_or(SimError::MissingLink {
                step: si,
                from: t.from,
                to: t.to,
            })?;
            if scenario.is_failed(e) {
                return Err(SimError::FailedLink {
                    step: si,
                    from: t.from,
                    to: t.to,
                });
            }
            step_alpha_factor = step_alpha_factor.max(scenario.alpha_factor(message_id));
            message_id += 1;
            *per_link_chunks.entry(e).or_insert(0) += t.chunks;
        }
        let busiest = per_link_chunks
            .iter()
            .map(|(&e, &chunks)| {
                let bw = scenario
                    .effective_bandwidth(topo, e, params)
                    .expect("failed links rejected above");
                chunks as f64 * chunk_bytes / bw
            })
            .fold(0.0, f64::max);
        completion += busiest + params.step_sync_latency_s * step_alpha_factor;
    }
    Ok(SimReport::new(
        schedule.commodities.num_endpoints(),
        shard_bytes,
        completion,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_mcf::throughput_upper_bound;
    use a2a_mcf::tsmcf::{solve_tsmcf, solve_tsmcf_auto};
    use a2a_topology::generators;

    #[test]
    fn throughput_approaches_upper_bound_at_large_buffers() {
        let topo = generators::complete(4);
        let sol = solve_tsmcf(&topo, 1).unwrap();
        let params = SimParams::default();
        let report = simulate_link_schedule(&topo, &sol, 256.0 * 1024.0 * 1024.0, &params);
        let bound = throughput_upper_bound(4, 1.0, params.link_bandwidth_gbps);
        assert!(report.throughput_gbps <= bound + 1e-6);
        assert!(report.throughput_gbps > 0.95 * bound);
    }

    #[test]
    fn small_buffers_are_latency_bound() {
        let topo = generators::hypercube(3);
        let sol = solve_tsmcf_auto(&topo).unwrap();
        let params = SimParams::default();
        let small = simulate_link_schedule(&topo, &sol, 512.0, &params);
        let large = simulate_link_schedule(&topo, &sol, 64.0 * 1024.0 * 1024.0, &params);
        assert!(small.throughput_gbps < 0.2 * large.throughput_gbps);
        // Latency floor: at least one sync per step.
        assert!(small.completion_seconds >= sol.steps as f64 * params.step_sync_latency_s);
    }

    #[test]
    fn chunked_and_fractional_simulations_agree_at_large_buffers() {
        let topo = generators::ring(3);
        let sol = solve_tsmcf_auto(&topo).unwrap();
        let chunked = a2a_schedule::ChunkedSchedule::from_tsmcf(&topo, &sol, 64).unwrap();
        let params = SimParams::default();
        let shard = 128.0 * 1024.0 * 1024.0;
        let a = simulate_link_schedule(&topo, &sol, shard, &params);
        let b = simulate_chunked_schedule(&topo, &chunked, shard, &params);
        let rel = (a.completion_seconds - b.completion_seconds).abs() / a.completion_seconds;
        assert!(
            rel < 0.2,
            "fractional {} vs chunked {}",
            a.completion_seconds,
            b.completion_seconds
        );
    }

    #[test]
    fn better_schedules_simulate_faster() {
        // tsMCF on the hypercube must beat the TACCL-like stand-in at large buffers.
        let topo = generators::hypercube(3);
        let tsmcf = solve_tsmcf_auto(&topo).unwrap();
        let taccl = a2a_baselines::taccl_like_heuristic(&topo, std::time::Duration::from_secs(2))
            .unwrap()
            .schedule()
            .cloned()
            .unwrap();
        let params = SimParams::default();
        let shard = 32.0 * 1024.0 * 1024.0;
        let fast = simulate_link_schedule(&topo, &tsmcf, shard, &params);
        let slow = simulate_link_schedule(&topo, &taccl, shard, &params);
        assert!(
            fast.throughput_gbps >= slow.throughput_gbps * 0.999,
            "tsMCF {} vs TACCL-like {}",
            fast.throughput_gbps,
            slow.throughput_gbps
        );
    }
}
