//! The closed-loop re-planning driver: detect → snapshot → re-solve → splice →
//! resume.
//!
//! [`replan_run`] executes a chunked schedule under a [`ScenarioTimeline`] and,
//! whenever a mid-run link failure interrupts it
//! ([`TimelineRun::Interrupted`]), repairs the schedule online:
//!
//! 1. **Snapshot** — the engine's [`InFlightSnapshot`] says where every chunk
//!    is (delivered / buffered / stranded, with exact partial-transfer byte
//!    accounting) and which links are dead.
//! 2. **Residual solve** — the undelivered holdings become
//!    [`TsDemand`]s on the punctured topology, solved by the delivery-exact
//!    column generation ([`a2a_mcf::residual`]), warm-started from the
//!    incumbent column pool of the nominal solve when the caller provides one
//!    ([`IncumbentPool`]) — measurably fewer simplex iterations than a cold
//!    clairvoyant re-solve.
//! 3. **Graceful degradation** — if the residual LP errors, or its wall time
//!    exceeds [`ReplanOptions::solve_time_budget_secs`], the driver falls back
//!    to the greedy shortest-path reroute
//!    ([`a2a_schedule::greedy_reroute_suffix`]): bandwidth-oblivious but
//!    failure-free whenever the destinations are reachable at all. A
//!    destination disconnected by the puncture is the *typed* terminal error
//!    [`ReplanError::UnreachableDestination`] — never a panic, never silent
//!    byte loss.
//! 4. **Splice & resume** — the repaired suffix is spliced onto the executed
//!    prefix ([`a2a_schedule::splice_schedule`], re-validated end-to-end,
//!    suffix checked against the dead links) and the spliced schedule is
//!    re-simulated under the *same* timeline: the prefix replays
//!    deterministically before the failure instant and the suffix runs on the
//!    surviving capacities. A later timeline event may interrupt again —
//!    cascading failures re-enter the loop up to
//!    [`ReplanOptions::max_attempts`] times, each attempt warm-started from
//!    the previous solve's column pool.
//!
//! The bench harness compares the replanned makespan against a *clairvoyant*
//! re-solve (full all-to-all on the punctured topology, as if the failure had
//! been known before the run) and against the nominal no-failure run; the
//! per-attempt [`ReplanAttempt`] records expose the solve cost side of that
//! trade.

use std::time::Instant;

use a2a_mcf::residual::{
    residual_minimum_steps, solve_residual_colgen, warm_seeds_from_columns, TsDemand,
};
use a2a_mcf::tscolgen::TsColumn;
use a2a_mcf::{ColGenOptions, CommoditySet, McfError};
use a2a_schedule::{greedy_reroute_suffix, lower_residual_suffix, splice_schedule};
use a2a_schedule::{ChunkedSchedule, ScheduleStep};
use a2a_topology::{EdgeId, NodeId, Topology};

use crate::event::{
    simulate_chunked_timeline, EventReport, ExecutionModel, InFlightSnapshot, SimError, TimelineRun,
};
use crate::scenario::ScenarioTimeline;
use crate::SimParams;

// Observability counters. Process-wide; accumulate until `a2a_obs::reset()`.
static OBS_REPLAN_ATTEMPTS: a2a_obs::Counter = a2a_obs::Counter::new("replan.attempts");
static OBS_REPLAN_FALLBACKS: a2a_obs::Counter = a2a_obs::Counter::new("replan.fallbacks");

/// The incumbent column pool of the nominal solve, used to warm-start residual
/// re-solves. `columns` and `steps` come from the
/// [`a2a_mcf::TsColGen`] that produced the running schedule; `commodities`
/// must match the schedule's.
#[derive(Debug, Clone)]
pub struct IncumbentPool {
    /// Positive-weight columns of the nominal master at termination.
    pub columns: Vec<TsColumn>,
    /// Commodities the columns index into.
    pub commodities: CommoditySet,
    /// Step count of the nominal solution (the columns' time horizon).
    pub steps: usize,
}

/// Options of the re-planning loop.
#[derive(Debug, Clone)]
pub struct ReplanOptions {
    /// Maximum number of repair attempts before giving up (each cascading
    /// failure consumes one).
    pub max_attempts: usize,
    /// Wall-clock budget for one residual LP solve. The solver is not
    /// preemptible, so the budget is enforced after the fact: an over-budget
    /// solve is discarded and the attempt degrades to the greedy reroute —
    /// modelling a control plane that must answer within a deadline.
    pub solve_time_budget_secs: f64,
    /// Column-generation options of the residual solves. Stabilization on by
    /// default (the recommended configuration for time-expanded masters).
    pub colgen: ColGenOptions,
}

impl Default for ReplanOptions {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            solve_time_budget_secs: f64::INFINITY,
            colgen: ColGenOptions::stabilized(),
        }
    }
}

/// Why the re-planning loop gave up. Every variant is a clean typed signal —
/// the loop never panics on a repairable or unrepairable fabric.
#[derive(Debug, Clone)]
pub enum ReplanError {
    /// The underlying simulation rejected the schedule outright (e.g. a
    /// failure already active at `t = 0`, which the static engine also
    /// rejects).
    Sim(SimError),
    /// A failure disconnected a destination: `chunks` chunks of commodity
    /// `origin → dest` are stuck at `at` with no surviving route. Terminal —
    /// no schedule can deliver them.
    UnreachableDestination {
        /// Commodity source.
        origin: NodeId,
        /// The unreachable destination.
        dest: NodeId,
        /// Rank holding the undeliverable chunks.
        at: NodeId,
        /// Number of chunks stuck there.
        chunks: usize,
    },
    /// The residual solve failed and the greedy fallback could not produce a
    /// splice either.
    Unrepairable(String),
    /// A repaired schedule kept getting interrupted; attempts ran out.
    AttemptsExhausted {
        /// Attempts performed (== `max_attempts`).
        attempts: usize,
    },
}

impl std::fmt::Display for ReplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplanError::Sim(e) => write!(f, "simulation failed: {e}"),
            ReplanError::UnreachableDestination {
                origin,
                dest,
                at,
                chunks,
            } => write!(
                f,
                "destination {dest} unreachable: {chunks} chunks of {origin}->{dest} \
                 stuck at rank {at}"
            ),
            ReplanError::Unrepairable(msg) => write!(f, "no repair found: {msg}"),
            ReplanError::AttemptsExhausted { attempts } => {
                write!(f, "gave up after {attempts} replan attempts")
            }
        }
    }
}

impl std::error::Error for ReplanError {}

/// What one repair attempt did and what it cost.
#[derive(Debug, Clone)]
pub struct ReplanAttempt {
    /// Simulated time of the interrupting failure.
    pub failure_time: f64,
    /// Links dead at the failure instant (original topology edge ids).
    pub failed_links: Vec<EdgeId>,
    /// Residual demands re-planned (distinct (commodity, holding rank) pairs).
    pub num_demands: usize,
    /// Warm-start seeds harvested from the incumbent pool for this attempt.
    pub warm_seeds: usize,
    /// Wall-clock seconds of the residual LP solve (0 when the solve was
    /// skipped because no incumbent/budget allowed none).
    pub solve_wall_secs: f64,
    /// Master simplex iterations of the residual solve (the warm-vs-cold
    /// comparison metric).
    pub master_iterations: usize,
    /// Whether the residual LP certified optimality.
    pub proved_optimal: bool,
    /// Whether the attempt used the greedy fallback instead of the LP suffix.
    pub used_fallback: bool,
    /// Steps of the spliced repaired suffix.
    pub suffix_steps: usize,
}

/// Result of a completed re-planning run.
#[derive(Debug, Clone)]
pub struct ReplanRun {
    /// The report of the final (completed) simulation of the repaired
    /// schedule under the full timeline.
    pub report: EventReport,
    /// The schedule that completed: nominal if no failure fired, otherwise
    /// the last spliced repair.
    pub schedule: ChunkedSchedule,
    /// One record per repair attempt, in order. Empty when the nominal
    /// schedule survived the whole timeline.
    pub attempts: Vec<ReplanAttempt>,
}

impl ReplanRun {
    /// Completion time of the (possibly repaired) run, in seconds.
    pub fn completion_seconds(&self) -> f64 {
        self.report.report.completion_seconds
    }
}

/// Runs `schedule` under `timeline`, repairing it online after every mid-run
/// link failure. See the module docs for the loop; `incumbent` enables
/// warm-started residual solves and is updated internally across cascading
/// failures (each repair's column pool warms the next).
pub fn replan_run(
    topo: &Topology,
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    params: &SimParams,
    timeline: &ScenarioTimeline,
    incumbent: Option<&IncumbentPool>,
    options: &ReplanOptions,
) -> Result<ReplanRun, ReplanError> {
    let mut current = schedule.clone();
    let mut pool: Option<IncumbentPool> = incumbent.cloned();
    let mut attempts: Vec<ReplanAttempt> = Vec::new();
    loop {
        let run = {
            let _obs = a2a_obs::span("replan.detect");
            simulate_chunked_timeline(
                topo,
                &current,
                shard_bytes,
                params,
                timeline,
                ExecutionModel::Synchronized,
            )
            .map_err(ReplanError::Sim)?
        };
        let snapshot = match run {
            TimelineRun::Completed(report) => {
                return Ok(ReplanRun {
                    report,
                    schedule: current,
                    attempts,
                });
            }
            TimelineRun::Interrupted(snapshot) => snapshot,
        };
        if attempts.len() >= options.max_attempts {
            return Err(ReplanError::AttemptsExhausted {
                attempts: attempts.len(),
            });
        }
        let (repaired, attempt, new_pool) =
            repair(topo, &current, &snapshot, pool.as_ref(), options)?;
        attempts.push(attempt);
        current = repaired;
        pool = new_pool;
    }
}

/// One repair: snapshot → demands → (warm) residual solve or fallback →
/// splice. Returns the spliced schedule, the attempt record, and the column
/// pool to warm the next cascade level with.
fn repair(
    topo: &Topology,
    current: &ChunkedSchedule,
    snapshot: &InFlightSnapshot,
    pool: Option<&IncumbentPool>,
    options: &ReplanOptions,
) -> Result<(ChunkedSchedule, ReplanAttempt, Option<IncumbentPool>), ReplanError> {
    let _obs = a2a_obs::span("replan.repair");
    OBS_REPLAN_ATTEMPTS.incr();
    let obs_snapshot = a2a_obs::span("replan.snapshot");
    let cps = snapshot.chunks_per_shard as f64;
    let punctured = topo.without_edges(&snapshot.failed_links);
    let forbidden: Vec<(NodeId, NodeId)> = snapshot
        .failed_links
        .iter()
        .map(|&e| {
            let edge = topo.edge(e);
            (edge.src, edge.dst)
        })
        .collect();

    // Reachability pre-check: a disconnected destination is terminal, typed.
    let mut demands: Vec<TsDemand> = Vec::new();
    for h in snapshot.undelivered() {
        let dist = punctured.bfs_distances(h.at);
        if dist[h.final_dest].is_none() {
            return Err(ReplanError::UnreachableDestination {
                origin: h.origin,
                dest: h.final_dest,
                at: h.at,
                chunks: h.chunks,
            });
        }
        demands.push(TsDemand {
            origin: h.origin,
            dest: h.final_dest,
            at: h.at,
            amount: h.chunks as f64 / cps,
        });
    }

    drop(obs_snapshot);
    let mut attempt = ReplanAttempt {
        failure_time: snapshot.time,
        failed_links: snapshot.failed_links.clone(),
        num_demands: demands.len(),
        warm_seeds: 0,
        solve_wall_secs: 0.0,
        master_iterations: 0,
        proved_optimal: false,
        used_fallback: false,
        suffix_steps: 0,
    };

    // Everything already delivered (the failure only touched junk-free slack):
    // the executed prefix alone is the repair.
    if demands.is_empty() {
        let _obs = a2a_obs::span("replan.splice");
        let spliced = splice_schedule(topo, current, &snapshot.executed_prefix, &[], &forbidden)
            .map_err(ReplanError::Unrepairable)?;
        return Ok((spliced.schedule, attempt, None));
    }

    // Residual solve (warm-started when a pool is available), then splice; any
    // failure on this path degrades to the greedy reroute instead of erroring.
    let lp_suffix: Option<(Vec<ScheduleStep>, Vec<TsColumn>, usize)> = (|| {
        let _obs = a2a_obs::span("replan.resolve");
        let steps = residual_minimum_steps(&punctured, &demands).ok()?;
        let warm = match pool {
            Some(p) => {
                warm_seeds_from_columns(&p.columns, &p.commodities, topo, &punctured, &demands)
            }
            None => Vec::new(),
        };
        attempt.warm_seeds = warm.len();
        let t0 = Instant::now();
        let solved = solve_residual_colgen(&punctured, &demands, steps, &options.colgen, &warm);
        attempt.solve_wall_secs = t0.elapsed().as_secs_f64();
        let res = match solved {
            Ok(res) => res,
            Err(McfError::BadArgument(_) | McfError::BadTopology(_) | McfError::Lp(_)) => {
                return None;
            }
        };
        attempt.master_iterations = res.stats.total_master_iterations();
        attempt.proved_optimal = res.stats.proved_optimal;
        if attempt.solve_wall_secs > options.solve_time_budget_secs {
            return None;
        }
        let suffix =
            lower_residual_suffix(&punctured, &res.solution, snapshot.chunks_per_shard).ok()?;
        Some((suffix, res.columns, steps))
    })();

    let (suffix, next_pool) = match lp_suffix {
        Some((suffix, columns, steps)) => {
            // Residual columns are per-demand on *punctured* edge ids; they are
            // not directly reusable as a commodity-indexed pool, so re-key them
            // by commodity for the next cascade level. Demands of the same
            // commodity merge their columns (trajectories stay distinct).
            let commodities = snapshot.commodities.clone();
            let rekeyed: Vec<TsColumn> = columns
                .into_iter()
                .filter_map(|c| {
                    let d = &demands[c.owner];
                    let owner = commodities.index_of(d.origin, d.dest)?;
                    // Remap punctured edge ids back to the original topology's.
                    let arcs = c
                        .arcs
                        .iter()
                        .map(|&(t, e)| {
                            let edge = punctured.edge(e);
                            (t, topo.find_edge(edge.src, edge.dst).expect("subset edges"))
                        })
                        .collect();
                    Some(TsColumn {
                        owner,
                        weight: c.weight,
                        arcs,
                    })
                })
                .collect();
            (
                suffix,
                Some(IncumbentPool {
                    columns: rekeyed,
                    commodities,
                    steps,
                }),
            )
        }
        None => {
            attempt.used_fallback = true;
            OBS_REPLAN_FALLBACKS.incr();
            let suffix = greedy_reroute_suffix(&punctured, &demands, snapshot.chunks_per_shard)
                .map_err(ReplanError::Unrepairable)?;
            (suffix, None)
        }
    };
    attempt.suffix_steps = suffix.len();
    let _obs_splice = a2a_obs::span("replan.splice");
    let spliced = splice_schedule(
        topo,
        current,
        &snapshot.executed_prefix,
        &suffix,
        &forbidden,
    )
    .map_err(ReplanError::Unrepairable)?;
    Ok((spliced.schedule, attempt, next_pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use a2a_mcf::solve_tsmcf_colgen_auto;
    use a2a_topology::generators;

    fn nominal_setup(topo: &Topology) -> (ChunkedSchedule, IncumbentPool, f64, SimParams) {
        let cg = solve_tsmcf_colgen_auto(topo).unwrap();
        let schedule = ChunkedSchedule::from_tsmcf_exact(topo, &cg.solution, 8).unwrap();
        let pool = IncumbentPool {
            columns: cg.columns,
            commodities: cg.solution.commodities.clone(),
            steps: cg.solution.steps,
        };
        (schedule, pool, 64.0 * 1024.0 * 1024.0, SimParams::default())
    }

    /// No events: the driver is a transparent wrapper over the timeline run.
    #[test]
    fn event_free_timeline_needs_no_repair() {
        let topo = generators::torus(&[3, 3]);
        let (schedule, pool, shard, params) = nominal_setup(&topo);
        let timeline = ScenarioTimeline::nominal();
        let run = replan_run(
            &topo,
            &schedule,
            shard,
            &params,
            &timeline,
            Some(&pool),
            &ReplanOptions::default(),
        )
        .unwrap();
        assert!(run.attempts.is_empty());
        assert_eq!(run.schedule.num_steps(), schedule.num_steps());
    }

    /// A mid-run failure on a schedule-carrying link: one repair attempt, the
    /// spliced schedule completes, and delivery is provable end-to-end.
    #[test]
    fn mid_run_failure_is_repaired_and_completes() {
        let topo = generators::torus(&[3, 3]);
        let (schedule, pool, shard, params) = nominal_setup(&topo);
        // Nominal completion, to place the failure mid-run and sanity-check the
        // repaired makespan.
        let nominal = replan_run(
            &topo,
            &schedule,
            shard,
            &params,
            &ScenarioTimeline::nominal(),
            None,
            &ReplanOptions::default(),
        )
        .unwrap();
        let t_nominal = nominal.completion_seconds();
        // Kill a first-step link mid-first-step.
        let tr = &schedule.steps[0].transfers[0];
        let timeline = ScenarioTimeline::new(Scenario::nominal())
            .with_link_failure_at(0.4 * t_nominal, topo.find_edge(tr.from, tr.to).unwrap());
        let run = replan_run(
            &topo,
            &schedule,
            shard,
            &params,
            &timeline,
            Some(&pool),
            &ReplanOptions::default(),
        )
        .unwrap();
        assert_eq!(run.attempts.len(), 1);
        let attempt = &run.attempts[0];
        assert!(!attempt.used_fallback, "LP repair expected");
        assert!(attempt.proved_optimal);
        assert!(attempt.warm_seeds > 0, "incumbent suffixes survive");
        assert!(attempt.num_demands > 0);
        assert!(run.completion_seconds() >= t_nominal - 1e-9);
        assert!(run.schedule.validate(&topo).is_empty());
        // The repaired suffix avoids the dead link.
        for step in &run.schedule.steps[run.schedule.num_steps() - attempt.suffix_steps..] {
            for t in &step.transfers {
                assert!((t.from, t.to) != (tr.from, tr.to));
            }
        }
    }

    /// A zero solve-time budget forces the greedy fallback; the run still
    /// completes with a valid schedule.
    #[test]
    fn exhausted_budget_degrades_to_greedy_reroute() {
        let topo = generators::torus(&[3, 3]);
        let (schedule, _, shard, params) = nominal_setup(&topo);
        let tr = &schedule.steps[0].transfers[0];
        let timeline = ScenarioTimeline::new(Scenario::nominal())
            .with_link_failure_at(1e-4, topo.find_edge(tr.from, tr.to).unwrap());
        let options = ReplanOptions {
            solve_time_budget_secs: 0.0,
            ..ReplanOptions::default()
        };
        let run = replan_run(&topo, &schedule, shard, &params, &timeline, None, &options).unwrap();
        assert_eq!(run.attempts.len(), 1);
        assert!(run.attempts[0].used_fallback);
        assert!(run.schedule.validate(&topo).is_empty());
    }

    /// Disconnecting a destination is the typed terminal error.
    #[test]
    fn disconnected_destination_is_typed_not_a_panic() {
        let topo = generators::ring(3);
        let (schedule, pool, shard, params) = nominal_setup(&topo);
        // The directed 3-ring has exactly one outgoing link per node; killing
        // 1 -> 2 mid-run leaves chunks bound for 2 unreachable.
        let timeline = ScenarioTimeline::new(Scenario::nominal())
            .with_link_failure_at(1e-4, topo.find_edge(1, 2).unwrap());
        let err = replan_run(
            &topo,
            &schedule,
            shard,
            &params,
            &timeline,
            Some(&pool),
            &ReplanOptions::default(),
        )
        .unwrap_err();
        match err {
            ReplanError::UnreachableDestination { dest, chunks, .. } => {
                assert_eq!(dest, 2);
                assert!(chunks > 0);
            }
            other => panic!("expected UnreachableDestination, got {other}"),
        }
    }

    /// Cascading failures: a second link dies while the first repair's suffix
    /// is running; the loop repairs again and completes within its budget.
    #[test]
    fn cascading_failures_replan_repeatedly() {
        let topo = generators::torus(&[3, 3]);
        let (schedule, pool, shard, params) = nominal_setup(&topo);
        let nominal = replan_run(
            &topo,
            &schedule,
            shard,
            &params,
            &ScenarioTimeline::nominal(),
            None,
            &ReplanOptions::default(),
        )
        .unwrap();
        let t_nominal = nominal.completion_seconds();
        let tr = &schedule.steps[0].transfers[0];
        let first = topo.find_edge(tr.from, tr.to).unwrap();
        // Second failure well after the first: some link of the torus other
        // than the first one (the repair may or may not use it; either way the
        // loop must terminate cleanly).
        let second = topo.find_edge(4, 5).unwrap_or(0);
        let timeline = ScenarioTimeline::new(Scenario::nominal())
            .with_link_failure_at(0.3 * t_nominal, first)
            .with_link_failure_at(0.9 * t_nominal, second);
        let run = replan_run(
            &topo,
            &schedule,
            shard,
            &params,
            &timeline,
            Some(&pool),
            &ReplanOptions::default(),
        )
        .unwrap();
        assert!(!run.attempts.is_empty() && run.attempts.len() <= 4);
        assert!(run.schedule.validate(&topo).is_empty());
    }
}
