//! Discrete-event flow-level execution of chunked schedules.
//!
//! # Event model
//!
//! Every [`a2a_schedule::ChunkTransfer`] becomes a fluid *flow job* of
//! `chunks · chunk_bytes` bytes on its directed link. The engine advances a
//! continuous clock between two kinds of events — a job becoming ready and a flow
//! draining — and between events every active flow progresses at a constant rate
//! determined by **max-min fair sharing** over three resource families:
//!
//! * each finite-bandwidth link (its effective bandwidth under the
//!   [`Scenario`](crate::Scenario), shrunk by the
//!   [`QpContention`](crate::QpContention) factor for the number of concurrent flows
//!   it carries),
//! * each sender's host-injection bandwidth ([`SimParams::host_injection_gbps`]),
//! * each receiver's host-ejection bandwidth (same cap).
//!
//! Rates are recomputed at every event (progressive filling), so a link speeds its
//! survivors up the moment one of its flows drains — a link with pending bytes is
//! never idle, which is what makes the synchronized mode agree exactly with the
//! closed-form model of [`crate::linksim`].
//!
//! # Execution models (the α–β split)
//!
//! * [`ExecutionModel::Synchronized`] — the MSCCL/oneCCL interpreter semantics: a
//!   global barrier between steps, `α = `[`SimParams::step_sync_latency_s`] paid once
//!   per step. On nominal fabrics with no injection/QP limits this reproduces the
//!   analytic [`crate::simulate_chunked_schedule`] to round-off (both models charge
//!   each step its busiest link's drain time plus the sync).
//! * [`ExecutionModel::DependencyDriven`] — asynchronous execution: a transfer
//!   departs as soon as the inbound copies it forwards have landed
//!   (the [`TransferDag`] extracted from the IR), paying
//!   `α = `[`SimParams::per_hop_latency_s`] per transfer instead of a global sync.
//!   Steps overlap wherever the data dependencies allow — a clear win in the
//!   latency-bound regime (no barriers), while at large buffers the overlap can
//!   make later-step flows *contend* with the current bottleneck link, so the
//!   asynchronous completion is bracketed by the busiest-link drain bound from
//!   below and a modest constant times the synchronized completion from above
//!   (fair sharing is work-conserving, not makespan-monotone).
//!
//! β is implicit in the byte volumes and effective bandwidths. Units: bytes,
//! seconds, and GB/s (1 GB/s = 1e9 bytes/s) throughout.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use a2a_mcf::CommoditySet;
use a2a_schedule::{ChunkTransfer, ChunkedSchedule, ScheduleStep, TransferDag};
use a2a_topology::{EdgeId, NodeId, Topology};

use crate::scenario::ScenarioTimeline;
use crate::{Scenario, SimParams, SimReport};

/// How the engine orders transfers in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// Global barrier between steps (store-and-forward interpreters); the per-step
    /// synchronization latency is charged once per step.
    #[default]
    Synchronized,
    /// Data-dependency-driven asynchronous execution; the per-hop latency is charged
    /// per transfer, and steps overlap wherever dependencies allow.
    DependencyDriven,
}

/// Options of an event-driven simulation run.
#[derive(Debug, Clone, Default)]
pub struct EventSimOptions {
    /// Execution model (synchronized barrier vs dependency-driven).
    pub model: ExecutionModel,
    /// Fabric perturbations applied during the run.
    pub scenario: Scenario,
}

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A transfer is routed over a link the scenario failed.
    FailedLink {
        /// Step of the offending transfer.
        step: usize,
        /// Sending rank.
        from: NodeId,
        /// Receiving rank.
        to: NodeId,
    },
    /// A transfer uses a link that does not exist in the topology.
    MissingLink {
        /// Step of the offending transfer.
        step: usize,
        /// Sending rank.
        from: NodeId,
        /// Receiving rank.
        to: NodeId,
    },
    /// The schedule is not executable (validation failure during dependency
    /// extraction).
    InvalidSchedule(String),
    /// The event loop could not make progress (should be unreachable for schedules
    /// that pass validation; kept as a hard backstop instead of an infinite loop).
    Stalled {
        /// Jobs that completed before the stall.
        completed: usize,
        /// Total jobs in the schedule.
        total: usize,
    },
    /// The requested run mode is not implemented for this engine configuration.
    Unsupported(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::FailedLink { step, from, to } => {
                write!(f, "step {step}: transfer {from}->{to} uses a failed link")
            }
            SimError::MissingLink { step, from, to } => {
                write!(f, "step {step}: transfer {from}->{to} uses a missing link")
            }
            SimError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            SimError::Stalled { completed, total } => {
                write!(f, "simulation stalled after {completed}/{total} jobs")
            }
            SimError::Unsupported(msg) => write!(f, "unsupported run mode: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for simulations that can fail.
pub type SimResult<T> = Result<T, SimError>;

/// Per-link usage accumulated over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkUsage {
    /// Total bytes shipped over the link.
    pub bytes: f64,
    /// Wall time during which at least one flow was active on the link.
    pub busy_secs: f64,
    /// `bytes / (effective bandwidth · makespan)` — the link's share of the run it
    /// spent moving data at full rate (0 for unused or infinite-bandwidth links).
    pub utilization: f64,
}

/// Detailed result of an event-driven simulation.
#[derive(Debug, Clone)]
pub struct EventReport {
    /// The headline completion/throughput report (same shape as the analytic model's).
    pub report: SimReport,
    /// Per-link usage, indexed by [`EdgeId`].
    pub per_link: Vec<LinkUsage>,
    /// Wall time at which the last transfer of each schedule step finished (pre-sync
    /// in synchronized mode; steps overlap in dependency-driven mode).
    pub step_completion_secs: Vec<f64>,
    /// Number of transfer jobs executed.
    pub num_jobs: usize,
    /// Peak number of concurrently active flows.
    pub max_concurrent_flows: usize,
}

impl EventReport {
    /// The busiest link's utilization.
    pub fn peak_link_utilization(&self) -> f64 {
        self.per_link
            .iter()
            .map(|l| l.utilization)
            .fold(0.0, f64::max)
    }
}

/// One fluid job: a whole-transfer byte volume on a directed link. Dependency
/// structure stays in the [`TransferDag`] it was extracted from (same indexing).
struct SimJob {
    link: EdgeId,
    src: NodeId,
    dst: NodeId,
    bytes: f64,
    step: usize,
}

/// f64 wrapper with total order, for the ready-event heap (times are finite and
/// non-negative).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Relative byte tolerance below which a flow counts as drained.
const DRAIN_EPS: f64 = 1e-12;

// Observability taps (free while tracing is off; totals accumulate until
// `a2a_obs::reset`). Fair-share recomputes count progressive-filling passes —
// one per flow-set change — and boundary re-reads count capacity snapshots
// re-read from the scenario timeline.
static OBS_FAIR_SHARE_RECOMPUTES: a2a_obs::Counter =
    a2a_obs::Counter::new("simnet.fair_share_recomputes");
static OBS_BOUNDARY_REREADS: a2a_obs::Counter = a2a_obs::Counter::new("simnet.boundary_rereads");
static OBS_FAIR_SHARE_NANOS: a2a_obs::Histogram =
    a2a_obs::Histogram::new("simnet.fair_share_nanos");

/// Simulates a chunked schedule with the event-driven engine.
///
/// The schedule must be executable on `topo`. The dependency extraction re-checks
/// sender buffering and commodity membership (not delivery completeness — run
/// [`ChunkedSchedule::validate`] for the full contract; a schedule that
/// under-delivers still simulates, and its reported throughput assumes the full
/// all-to-all volume). The scenario may slow, re-rate or fail links — a failed
/// link that the schedule still uses is an error, which is exactly the signal that a
/// degraded fabric needs a rerouted schedule (solve on the punctured topology, lower
/// again, and re-simulate under the same scenario).
pub fn simulate_chunked_event(
    topo: &Topology,
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    params: &SimParams,
    options: &EventSimOptions,
) -> SimResult<EventReport> {
    let _obs = a2a_obs::span("simnet.run");
    let dag = TransferDag::from_schedule(schedule).map_err(SimError::InvalidSchedule)?;
    let (jobs, link_bw) =
        resolve_jobs(topo, schedule, shard_bytes, params, &options.scenario, &dag)?;

    // Per-message α multipliers (1.0 without jitter). Job ids are the
    // schedule's step-major transfer order, the message identity the scenario
    // keys its draw on.
    let alpha_factor: Vec<f64> = (0..jobs.len())
        .map(|id| options.scenario.alpha_factor(id))
        .collect();

    let mut engine = Engine {
        jobs: &jobs,
        dag: &dag,
        link_bw: link_bw.clone(),
        params,
        alpha_factor: &alpha_factor,
        num_nodes: topo.num_nodes(),
        num_steps: dag.num_steps,
        link_seen: vec![0; topo.num_edges()],
        seen_epoch: 0,
    };
    let outcome = match options.model {
        ExecutionModel::Synchronized => engine.run_synchronized(),
        ExecutionModel::DependencyDriven => engine.run_dependency_driven()?,
    };
    Ok(build_report(
        schedule,
        shard_bytes,
        &jobs,
        &link_bw,
        outcome,
    ))
}

/// Resolves every transfer of the schedule onto a live link up front, under the
/// given (static) scenario. Returns the fluid jobs plus the per-edge effective
/// bandwidths of the used links (unused links stay at `+inf`).
fn resolve_jobs(
    topo: &Topology,
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    params: &SimParams,
    scenario: &Scenario,
    dag: &TransferDag,
) -> SimResult<(Vec<SimJob>, Vec<f64>)> {
    let chunk_bytes = shard_bytes / schedule.chunks_per_shard as f64;
    let mut jobs = Vec::with_capacity(dag.jobs.len());
    let mut link_bw = vec![f64::INFINITY; topo.num_edges()];
    for j in &dag.jobs {
        let link = topo.find_edge(j.from, j.to).ok_or(SimError::MissingLink {
            step: j.step,
            from: j.from,
            to: j.to,
        })?;
        let bw = scenario
            .effective_bandwidth(topo, link, params)
            .ok_or(SimError::FailedLink {
                step: j.step,
                from: j.from,
                to: j.to,
            })?;
        link_bw[link] = bw;
        jobs.push(SimJob {
            link,
            src: j.from,
            dst: j.to,
            bytes: j.chunks as f64 * chunk_bytes,
            step: j.step,
        });
    }
    Ok((jobs, link_bw))
}

/// Assembles the [`EventReport`] from a finished engine run. Utilization uses the
/// links' bandwidths at the start of the run (for timeline runs, the t=0 values).
fn build_report(
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    jobs: &[SimJob],
    link_bw: &[f64],
    outcome: Outcome,
) -> EventReport {
    let makespan = outcome.completion;
    let mut per_link = vec![LinkUsage::default(); link_bw.len()];
    for job in jobs {
        per_link[job.link].bytes += job.bytes;
    }
    for (e, busy) in outcome.link_busy.iter().enumerate() {
        per_link[e].busy_secs = *busy;
        if makespan > 0.0 && link_bw[e].is_finite() && link_bw[e] > 0.0 {
            per_link[e].utilization = per_link[e].bytes / (link_bw[e] * makespan);
        }
    }
    EventReport {
        report: SimReport::new(schedule.commodities.num_endpoints(), shard_bytes, makespan),
        per_link,
        step_completion_secs: outcome.step_completion,
        num_jobs: jobs.len(),
        max_concurrent_flows: outcome.max_concurrent,
    }
}

/// Where the chunks of one commodity sit at snapshot time: `chunks` whole chunks
/// of commodity `(origin → final_dest)` held at rank `at` (equal to `final_dest`
/// for delivered chunks). `stranded_chunks` of them were committed to a transfer
/// whose link failed mid-flight — they are retained whole at the sender and
/// re-enter the residual problem from there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHolding {
    /// Commodity source rank.
    pub origin: NodeId,
    /// Commodity destination rank.
    pub final_dest: NodeId,
    /// Rank currently holding the chunks.
    pub at: NodeId,
    /// Whole chunks held (delivered if `at == final_dest`).
    pub chunks: usize,
    /// Chunks of `chunks` that were cut off a failed link (`<= chunks`).
    pub stranded_chunks: usize,
}

/// The in-flight state of a run interrupted by a mid-run link failure: where
/// every chunk is, what was executed, and the exact byte ledger of the cut.
///
/// **Partial-transfer accounting.** Every transfer active at the failure instant
/// is cut: the receiver keeps the whole chunks that fully drained; the rest stay
/// whole at the sender (a partially-drained chunk is retransmitted — its drained
/// bytes are reported in [`InFlightSnapshot::in_flight_bytes`], not silently
/// lost). Sender-retained chunks of a transfer whose *own link failed* are
/// marked stranded; retained chunks of live-link transfers are ordinary buffered
/// chunks. Chunk conservation is exact:
/// `delivered_chunks + buffered_chunks + stranded_chunks == total_chunks`, and in
/// bytes `delivered_bytes + buffered_bytes + stranded_bytes + in_flight_bytes ==
/// total_bytes` (the partially-drained fraction of each cut chunk is carried by
/// `in_flight_bytes`; its undrained fraction by the stranded/buffered class of
/// its sender-retained chunk).
#[derive(Debug, Clone)]
pub struct InFlightSnapshot {
    /// Simulated time of the interrupting failure event.
    pub time: f64,
    /// All edges failed at `time` (cumulative over the timeline), in the
    /// *original* topology's edge ids — the set to puncture before re-solving.
    pub failed_links: Vec<EdgeId>,
    /// Number of ranks of the interrupted schedule.
    pub num_ranks: usize,
    /// Chunk granularity of the interrupted schedule.
    pub chunks_per_shard: usize,
    /// Shard size in bytes the run was shipping per commodity.
    pub shard_bytes: f64,
    /// The interrupted schedule's commodities.
    pub commodities: CommoditySet,
    /// Location of every chunk (delivered, buffered or stranded), aggregated per
    /// `(commodity, holding rank)`.
    pub holdings: Vec<ChunkHolding>,
    /// The executed prefix: every step that completed before the cut, plus the
    /// cut step truncated to the chunks that fully drained per transfer (omitted
    /// when nothing of the cut step completed). Splicing a repaired suffix onto
    /// this prefix reproduces the state in `holdings`.
    pub executed_prefix: Vec<ScheduleStep>,
    /// Whole chunks sitting at their final destination.
    pub delivered_chunks: usize,
    /// Whole chunks buffered at intermediate ranks (not stranded).
    pub buffered_chunks: usize,
    /// Whole chunks retained at senders because their link died mid-transfer.
    pub stranded_chunks: usize,
    /// Bytes of `delivered_chunks`.
    pub delivered_bytes: f64,
    /// Bytes of `buffered_chunks`, minus the drained fraction of partially-drained
    /// live-link chunks (that fraction is in `in_flight_bytes`).
    pub buffered_bytes: f64,
    /// Undrained bytes of transfers cut off failed links.
    pub stranded_bytes: f64,
    /// Drained bytes of partially-transferred chunks (work that must be redone:
    /// the chunk is retransmitted whole from its sender).
    pub in_flight_bytes: f64,
}

impl InFlightSnapshot {
    /// Total chunks across all commodities.
    pub fn total_chunks(&self) -> usize {
        self.commodities.len() * self.chunks_per_shard
    }

    /// Total bytes across all commodities.
    pub fn total_bytes(&self) -> f64 {
        self.commodities.len() as f64 * self.shard_bytes
    }

    /// Holdings still awaiting delivery (`at != final_dest`) — the residual
    /// demand of the re-planning problem.
    pub fn undelivered(&self) -> impl Iterator<Item = &ChunkHolding> + '_ {
        self.holdings.iter().filter(|h| h.at != h.final_dest)
    }
}

/// Result of a timeline run: either the schedule completed (possibly under
/// degraded capacities), or a failure stranded in-flight work and the run was
/// interrupted with a snapshot to re-plan from.
#[derive(Debug, Clone)]
pub enum TimelineRun {
    /// The run completed; the report's utilization figures use the t=0 bandwidths.
    Completed(EventReport),
    /// A link failure interrupted the run mid-flight.
    Interrupted(InFlightSnapshot),
}

/// Simulates a chunked schedule under a [`ScenarioTimeline`] (synchronized
/// execution only).
///
/// Events at `t <= 0` fold into the base scenario, so a failure at `t = 0`
/// rejects the schedule up front with [`SimError::FailedLink`], exactly like the
/// static engine; an event-free timeline reproduces [`simulate_chunked_event`]
/// bit-for-bit. Dynamic events re-rate links at their event boundary (drains in
/// progress are cut and rates recomputed). A dynamic [`LinkFail`] event checks
/// whether any *remaining* transfer (active or in a future step) uses the dead
/// link: if none does, the run continues; otherwise the run stops and returns an
/// [`InFlightSnapshot`] with partial-transfer accounting.
///
/// [`LinkFail`]: crate::scenario::TimedEvent::LinkFail
pub fn simulate_chunked_timeline(
    topo: &Topology,
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    params: &SimParams,
    timeline: &ScenarioTimeline,
    model: ExecutionModel,
) -> SimResult<TimelineRun> {
    let _obs = a2a_obs::span("simnet.run");
    if model != ExecutionModel::Synchronized {
        return Err(SimError::Unsupported(
            "timeline simulation is only implemented for synchronized execution".into(),
        ));
    }
    let dag = TransferDag::from_schedule(schedule).map_err(SimError::InvalidSchedule)?;
    // Fold t <= 0 events into the starting scenario; a failure at t = 0 rejects
    // the schedule here, identically to the static engine.
    let start = timeline.scenario_at(0.0);
    let (jobs, link_bw) = resolve_jobs(topo, schedule, shard_bytes, params, &start, &dag)?;
    let alpha_factor: Vec<f64> = (0..jobs.len()).map(|id| start.alpha_factor(id)).collect();

    let mut engine = Engine {
        jobs: &jobs,
        dag: &dag,
        link_bw: link_bw.clone(),
        params,
        alpha_factor: &alpha_factor,
        num_nodes: topo.num_nodes(),
        num_steps: dag.num_steps,
        link_seen: vec![0; topo.num_edges()],
        seen_epoch: 0,
    };

    let times = timeline.dynamic_event_times();
    if times.is_empty() {
        let outcome = engine.run_synchronized();
        return Ok(TimelineRun::Completed(build_report(
            schedule,
            shard_bytes,
            &jobs,
            &link_bw,
            outcome,
        )));
    }

    // Resolve each event boundary into a full capacity table up front.
    let boundaries: Vec<Boundary> = times
        .iter()
        .map(|&te| {
            let sc = timeline.scenario_at(te);
            let mut bw = vec![f64::INFINITY; topo.num_edges()];
            let mut failed = vec![false; topo.num_edges()];
            let mut failed_links = Vec::new();
            for e in 0..topo.num_edges() {
                match sc.effective_bandwidth(topo, e, params) {
                    Some(b) => {
                        // Only used links need a finite entry (matching the
                        // static resolution); unused links stay +inf.
                        if link_bw[e].is_finite() {
                            bw[e] = b;
                        }
                    }
                    None => {
                        bw[e] = 0.0;
                        failed[e] = true;
                        failed_links.push(e);
                    }
                }
            }
            Boundary {
                time: te,
                link_bw: bw,
                failed,
                failed_links,
            }
        })
        .collect();

    match engine.run_synchronized_timeline(&boundaries) {
        TimelineOutcome::Completed(outcome) => Ok(TimelineRun::Completed(build_report(
            schedule,
            shard_bytes,
            &jobs,
            &link_bw,
            outcome,
        ))),
        TimelineOutcome::Interrupted(cut) => Ok(TimelineRun::Interrupted(build_snapshot(
            schedule,
            shard_bytes,
            &jobs,
            &dag,
            &boundaries[cut.boundary],
            &cut,
        ))),
    }
}

/// A resolved timeline event boundary: the full capacity table in effect from
/// `time` on.
struct Boundary {
    time: f64,
    link_bw: Vec<f64>,
    /// Per-edge failure flag at this time (cumulative).
    failed: Vec<bool>,
    /// Failed edge ids at this time, ascending.
    failed_links: Vec<EdgeId>,
}

/// Raw interruption record from the timeline engine.
struct Interrupt {
    /// Failure event time.
    time: f64,
    /// Step that was draining (or about to start) when the run was cut.
    cut_step: usize,
    /// `(job id, remaining bytes)` for every job of the cut step; jobs that fully
    /// drained before the cut carry `0.0`.
    remaining: Vec<(usize, f64)>,
    /// Index of the triggering boundary.
    boundary: usize,
}

enum TimelineOutcome {
    Completed(Outcome),
    Interrupted(Interrupt),
}

/// Builds the [`InFlightSnapshot`] of an interrupted run by replaying the
/// schedule's buffer state up to the cut and applying partial-transfer
/// accounting to the cut step.
fn build_snapshot(
    schedule: &ChunkedSchedule,
    shard_bytes: f64,
    jobs: &[SimJob],
    dag: &TransferDag,
    boundary: &Boundary,
    cut: &Interrupt,
) -> InFlightSnapshot {
    let ncomm = schedule.commodities.len();
    let cps = schedule.chunks_per_shard;
    let chunk_bytes = shard_bytes / cps as f64;
    let n = schedule.num_ranks;

    // Replay fully executed steps: per-(commodity, rank) whole-chunk counts.
    let mut buffered = vec![vec![0usize; n]; ncomm];
    for (idx, s, _) in schedule.commodities.iter() {
        buffered[idx][s] = cps;
    }
    for step in schedule.steps.iter().take(cut.cut_step) {
        for tr in &step.transfers {
            let idx = schedule
                .commodities
                .index_of(tr.origin, tr.final_dest)
                .expect("schedule transfer names a known commodity");
            buffered[idx][tr.from] -= tr.chunks;
            buffered[idx][tr.to] += tr.chunks;
        }
    }

    // Cut the in-flight step: each transfer keeps its fully-drained chunks at
    // the receiver; the rest stay whole at the sender. Track the stranded ones
    // (failed link) and the byte ledger of partially-drained chunks.
    let mut stranded_at = vec![vec![0usize; n]; ncomm];
    let mut stranded_chunks = 0usize;
    let mut stranded_bytes = 0.0f64;
    let mut in_flight_bytes = 0.0f64;
    let mut partial_live_bytes = 0.0f64;
    let mut truncated = Vec::new();
    for &(job_id, remaining) in &cut.remaining {
        let job = &jobs[job_id];
        let tj = &dag.jobs[job_id];
        let tr = &schedule.steps[tj.step].transfers[tj.index_in_step];
        debug_assert_eq!((tr.from, tr.to), (job.src, job.dst));
        let drained = (job.bytes - remaining).max(0.0);
        let completed = ((drained / chunk_bytes + 1e-9).floor() as usize).min(tr.chunks);
        let retained = tr.chunks - completed;
        let partial = (drained - completed as f64 * chunk_bytes).max(0.0);
        let idx = schedule
            .commodities
            .index_of(tr.origin, tr.final_dest)
            .expect("schedule transfer names a known commodity");
        buffered[idx][tr.from] -= tr.chunks;
        buffered[idx][tr.from] += retained;
        buffered[idx][tr.to] += completed;
        if boundary.failed[job.link] {
            stranded_at[idx][tr.from] += retained;
            stranded_chunks += retained;
            stranded_bytes += remaining;
            in_flight_bytes += partial;
        } else {
            partial_live_bytes += partial;
            in_flight_bytes += partial;
        }
        if completed > 0 {
            truncated.push(ChunkTransfer {
                from: tr.from,
                to: tr.to,
                origin: tr.origin,
                final_dest: tr.final_dest,
                chunks: completed,
            });
        }
    }

    let mut executed_prefix: Vec<ScheduleStep> =
        schedule.steps.iter().take(cut.cut_step).cloned().collect();
    if !truncated.is_empty() {
        executed_prefix.push(ScheduleStep {
            transfers: truncated,
        });
    }

    let mut holdings = Vec::new();
    let mut delivered_chunks = 0usize;
    for (idx, _, d) in schedule.commodities.iter() {
        for at in 0..n {
            let chunks = buffered[idx][at];
            if chunks == 0 {
                continue;
            }
            if at == d {
                delivered_chunks += chunks;
            }
            let (origin, final_dest) = schedule.commodities.pair(idx);
            holdings.push(ChunkHolding {
                origin,
                final_dest,
                at,
                chunks,
                stranded_chunks: stranded_at[idx][at].min(chunks),
            });
        }
    }
    let total_chunks = ncomm * cps;
    let buffered_chunks = total_chunks - delivered_chunks - stranded_chunks;
    InFlightSnapshot {
        time: cut.time,
        failed_links: boundary.failed_links.clone(),
        num_ranks: n,
        chunks_per_shard: cps,
        shard_bytes,
        commodities: schedule.commodities.clone(),
        holdings,
        executed_prefix,
        delivered_chunks,
        buffered_chunks,
        stranded_chunks,
        delivered_bytes: delivered_chunks as f64 * chunk_bytes,
        buffered_bytes: buffered_chunks as f64 * chunk_bytes - partial_live_bytes,
        stranded_bytes,
        in_flight_bytes,
    }
}

/// Raw timing outcome of one engine run.
struct Outcome {
    completion: f64,
    step_completion: Vec<f64>,
    link_busy: Vec<f64>,
    max_concurrent: usize,
}

/// A flow currently draining.
struct ActiveFlow {
    job: usize,
    remaining: f64,
}

struct Engine<'a> {
    jobs: &'a [SimJob],
    dag: &'a TransferDag,
    /// Current effective bandwidth per edge. Owned because timeline runs rewrite
    /// it at event boundaries; static runs never touch it after construction.
    link_bw: Vec<f64>,
    params: &'a SimParams,
    /// Per-job α multiplier from the scenario's per-message jitter (all 1.0
    /// when jitter is off).
    alpha_factor: &'a [f64],
    num_nodes: usize,
    num_steps: usize,
    /// Scratch for per-event busy-time dedup (see [`Engine::advance`]).
    link_seen: Vec<u64>,
    seen_epoch: u64,
}

impl Engine<'_> {
    /// Max-min fair rates (bytes/s) for the active flows under link, injection and
    /// ejection capacities (progressive filling).
    fn assign_rates(&self, active: &[ActiveFlow]) -> Vec<f64> {
        OBS_FAIR_SHARE_RECOMPUTES.incr();
        let _recompute_timer = OBS_FAIR_SHARE_NANOS.start();
        let nf = active.len();
        // Resource table: capacity, the flows using each resource, and (for the O(1)
        // freeze update) each flow's own resource list — a flow touches at most
        // three resources: its link, its sender's injection cap, its receiver's
        // ejection cap.
        let mut caps: Vec<f64> = Vec::new();
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut flow_res: Vec<Vec<usize>> = vec![Vec::with_capacity(3); nf];
        {
            // Links (finite bandwidth only; QP contention shrinks the capacity by the
            // concurrent-flow count).
            let mut link_res: std::collections::HashMap<EdgeId, usize> =
                std::collections::HashMap::new();
            for (fi, flow) in active.iter().enumerate() {
                let e = self.jobs[flow.job].link;
                if self.link_bw[e].is_infinite() {
                    continue;
                }
                let ri = *link_res.entry(e).or_insert_with(|| {
                    caps.push(self.link_bw[e]);
                    members.push(Vec::new());
                    caps.len() - 1
                });
                members[ri].push(fi);
                flow_res[fi].push(ri);
            }
            if let Some(qp) = self.params.qp_contention {
                for (&e, &ri) in &link_res {
                    caps[ri] = self.link_bw[e] * qp.bandwidth_factor(members[ri].len());
                }
            }
            // Host injection / ejection caps, one resource per involved node side.
            if let Some(gbps) = self.params.host_injection_gbps {
                let cap = gbps * 1e9;
                let mut send_res = vec![usize::MAX; self.num_nodes];
                let mut recv_res = vec![usize::MAX; self.num_nodes];
                for (fi, flow) in active.iter().enumerate() {
                    let job = &self.jobs[flow.job];
                    for (node, table) in [(job.src, &mut send_res), (job.dst, &mut recv_res)] {
                        if table[node] == usize::MAX {
                            table[node] = caps.len();
                            caps.push(cap);
                            members.push(Vec::new());
                        }
                        members[table[node]].push(fi);
                        flow_res[fi].push(table[node]);
                    }
                }
            }
        }

        let mut rate = vec![0.0f64; nf];
        let mut frozen = vec![false; nf];
        let mut residual = caps;
        let mut users: Vec<usize> = members.iter().map(Vec::len).collect();
        let mut unfrozen = nf;
        while unfrozen > 0 {
            let mut best: Option<(f64, usize)> = None;
            for (ri, &u) in users.iter().enumerate() {
                if u == 0 {
                    continue;
                }
                let level = residual[ri] / u as f64;
                if best.is_none_or(|(b, _)| level < b) {
                    best = Some((level, ri));
                }
            }
            let Some((level, ri)) = best else {
                // No finite resource constrains the survivors.
                for (fi, r) in rate.iter_mut().enumerate() {
                    if !frozen[fi] {
                        *r = f64::INFINITY;
                    }
                }
                break;
            };
            // Freeze the bottleneck resource's flows at the fair level and charge
            // their share to every resource they touch.
            for fi in members[ri].clone() {
                if frozen[fi] {
                    continue;
                }
                frozen[fi] = true;
                unfrozen -= 1;
                rate[fi] = level;
                for &rj in &flow_res[fi] {
                    residual[rj] = (residual[rj] - level).max(0.0);
                    users[rj] -= 1;
                }
            }
        }
        rate
    }

    /// Drains the given active set to empty, advancing `t` and accumulating per-link
    /// busy time. New flows never join mid-drain (synchronized step) — the caller
    /// handles arrivals in the dependency-driven loop via `drain_until`.
    fn drain_step(&mut self, active: &mut Vec<ActiveFlow>, t: &mut f64, link_busy: &mut [f64]) {
        while !active.is_empty() {
            let rates = self.assign_rates(active);
            let mut dt = f64::INFINITY;
            for (flow, &r) in active.iter().zip(&rates) {
                dt = dt.min(if r.is_infinite() {
                    0.0
                } else {
                    flow.remaining / r
                });
            }
            self.advance(active, &rates, dt, t, link_busy);
            active.retain(|f| f.remaining > DRAIN_EPS * self.jobs[f.job].bytes.max(1.0));
        }
    }

    /// Advances all active flows by `dt` seconds at the given rates.
    fn advance(
        &mut self,
        active: &mut [ActiveFlow],
        rates: &[f64],
        dt: f64,
        t: &mut f64,
        link_busy: &mut [f64],
    ) {
        if dt > 0.0 {
            // Epoch-stamped scratch dedupes busy-time accounting per link without a
            // per-event O(num_edges) allocation (advance runs once per event).
            self.seen_epoch += 1;
            for flow in active.iter() {
                let e = self.jobs[flow.job].link;
                if self.link_seen[e] != self.seen_epoch {
                    self.link_seen[e] = self.seen_epoch;
                    link_busy[e] += dt;
                }
            }
        }
        for (flow, &r) in active.iter_mut().zip(rates) {
            flow.remaining = if r.is_infinite() {
                0.0
            } else {
                (flow.remaining - r * dt).max(0.0)
            };
        }
        *t += dt;
    }

    /// Synchronized (barrier) execution: each step's flows start together and the
    /// step ends when the last drains, plus the per-step synchronization latency.
    fn run_synchronized(&mut self) -> Outcome {
        let mut t = 0.0f64;
        let mut link_busy = vec![0.0f64; self.link_bw.len()];
        let mut step_completion = vec![0.0f64; self.num_steps];
        let mut max_concurrent = 0usize;
        let mut next_job = 0usize;
        for step in 0..self.num_steps {
            let _obs = a2a_obs::span("simnet.step");
            let mut active = Vec::new();
            // A barrier waits for its slowest participant, so the step's α is
            // the per-step sync latency times the worst per-message jitter
            // factor among the step's transfers (1.0 for an empty step).
            let mut step_alpha_factor = 1.0f64;
            while next_job < self.jobs.len() && self.jobs[next_job].step == step {
                step_alpha_factor = step_alpha_factor.max(self.alpha_factor[next_job]);
                active.push(ActiveFlow {
                    job: next_job,
                    remaining: self.jobs[next_job].bytes,
                });
                next_job += 1;
            }
            max_concurrent = max_concurrent.max(active.len());
            self.drain_step(&mut active, &mut t, &mut link_busy);
            step_completion[step] = t;
            t += self.params.step_sync_latency_s * step_alpha_factor;
        }
        Outcome {
            completion: t,
            step_completion,
            link_busy,
            max_concurrent,
        }
    }

    /// True if any transfer that has not finished — an active flow of the current
    /// step or any job of a later step — uses a failed link.
    fn remaining_work_uses_failed(
        &self,
        active: &[ActiveFlow],
        next_job: usize,
        failed: &[bool],
    ) -> bool {
        active.iter().any(|f| failed[self.jobs[f.job].link])
            || self.jobs[next_job..].iter().any(|j| failed[j.link])
    }

    /// Synchronized execution under timed capacity changes: drains are cut at
    /// every boundary, capacities are re-read, and a failure that strands
    /// remaining work interrupts the run. With an empty boundary list this is
    /// exactly [`Engine::run_synchronized`].
    fn run_synchronized_timeline(&mut self, boundaries: &[Boundary]) -> TimelineOutcome {
        let mut t = 0.0f64;
        let mut link_busy = vec![0.0f64; self.link_bw.len()];
        let mut step_completion = vec![0.0f64; self.num_steps];
        let mut max_concurrent = 0usize;
        let mut next_job = 0usize;
        let mut bi = 0usize;
        for step in 0..self.num_steps {
            let _obs = a2a_obs::span("simnet.step");
            let step_first_job = next_job;
            let mut active = Vec::new();
            let mut step_alpha_factor = 1.0f64;
            while next_job < self.jobs.len() && self.jobs[next_job].step == step {
                step_alpha_factor = step_alpha_factor.max(self.alpha_factor[next_job]);
                active.push(ActiveFlow {
                    job: next_job,
                    remaining: self.jobs[next_job].bytes,
                });
                next_job += 1;
            }
            max_concurrent = max_concurrent.max(active.len());
            while !active.is_empty() {
                let rates = self.assign_rates(&active);
                let mut dt = f64::INFINITY;
                for (flow, &r) in active.iter().zip(&rates) {
                    dt = dt.min(if r.is_infinite() {
                        0.0
                    } else {
                        flow.remaining / r
                    });
                }
                // Cut the drain at the next event boundary.
                if bi < boundaries.len() && boundaries[bi].time - t <= dt {
                    let dt_to_event = (boundaries[bi].time - t).max(0.0);
                    self.advance(&mut active, &rates, dt_to_event, &mut t, &mut link_busy);
                    active.retain(|f| f.remaining > DRAIN_EPS * self.jobs[f.job].bytes.max(1.0));
                    let b = &boundaries[bi];
                    self.link_bw.copy_from_slice(&b.link_bw);
                    OBS_BOUNDARY_REREADS.incr();
                    bi += 1;
                    if !b.failed_links.is_empty()
                        && self.remaining_work_uses_failed(&active, next_job, &b.failed)
                    {
                        let remaining = (step_first_job..next_job)
                            .map(|j| {
                                let left = active
                                    .iter()
                                    .find(|f| f.job == j)
                                    .map_or(0.0, |f| f.remaining);
                                (j, left)
                            })
                            .collect();
                        return TimelineOutcome::Interrupted(Interrupt {
                            time: b.time,
                            cut_step: step,
                            remaining,
                            boundary: bi - 1,
                        });
                    }
                    continue;
                }
                self.advance(&mut active, &rates, dt, &mut t, &mut link_busy);
                active.retain(|f| f.remaining > DRAIN_EPS * self.jobs[f.job].bytes.max(1.0));
            }
            step_completion[step] = t;
            // Events during the synchronization window fire at the barrier: no
            // flow is in flight, so a failure only matters for future steps (the
            // cut falls exactly on the step boundary, with no partial transfers).
            let sync_end = t + self.params.step_sync_latency_s * step_alpha_factor;
            while bi < boundaries.len() && boundaries[bi].time <= sync_end {
                let b = &boundaries[bi];
                self.link_bw.copy_from_slice(&b.link_bw);
                OBS_BOUNDARY_REREADS.incr();
                bi += 1;
                if !b.failed_links.is_empty()
                    && self.remaining_work_uses_failed(&[], next_job, &b.failed)
                {
                    return TimelineOutcome::Interrupted(Interrupt {
                        time: b.time.max(t),
                        cut_step: step + 1,
                        remaining: Vec::new(),
                        boundary: bi - 1,
                    });
                }
            }
            t = sync_end;
        }
        TimelineOutcome::Completed(Outcome {
            completion: t,
            step_completion,
            link_busy,
            max_concurrent,
        })
    }

    /// Dependency-driven execution: a job becomes ready `per_hop_latency_s` after its
    /// last dependency drains; ready flows share the fabric max-min fairly.
    fn run_dependency_driven(&mut self) -> SimResult<Outcome> {
        let _obs = a2a_obs::span("simnet.dependency_run");
        let n = self.jobs.len();
        let alpha = self.params.per_hop_latency_s;
        let mut indeg: Vec<usize> = self.dag.jobs.iter().map(|j| j.deps.len()).collect();
        let succ = self.dag.successors();
        let mut ready: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
        for (id, &deg) in indeg.iter().enumerate() {
            if deg == 0 {
                ready.push(Reverse((OrdF64(alpha * self.alpha_factor[id]), id)));
            }
        }

        let mut t = 0.0f64;
        let mut link_busy = vec![0.0f64; self.link_bw.len()];
        let mut step_completion = vec![0.0f64; self.num_steps];
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut completed = 0usize;
        let mut max_concurrent = 0usize;
        // Each iteration activates or completes at least one job, so 2n + 1 bounds the
        // loop; the 4n + 16 guard turns any accounting bug into an error, not a hang.
        let mut guard = 4 * n + 16;
        while completed < n {
            guard -= 1;
            if guard == 0 {
                return Err(SimError::Stalled {
                    completed,
                    total: n,
                });
            }
            if active.is_empty() {
                let Some(&Reverse((OrdF64(rt), _))) = ready.peek() else {
                    return Err(SimError::Stalled {
                        completed,
                        total: n,
                    });
                };
                t = t.max(rt);
            }
            while let Some(&Reverse((OrdF64(rt), id))) = ready.peek() {
                if rt > t {
                    break;
                }
                ready.pop();
                active.push(ActiveFlow {
                    job: id,
                    remaining: self.jobs[id].bytes,
                });
            }
            max_concurrent = max_concurrent.max(active.len());

            let rates = self.assign_rates(&active);
            let mut dt = f64::INFINITY;
            for (flow, &r) in active.iter().zip(&rates) {
                dt = dt.min(if r.is_infinite() {
                    0.0
                } else {
                    flow.remaining / r
                });
            }
            // Stop early if a new job becomes ready mid-drain.
            if let Some(&Reverse((OrdF64(rt), _))) = ready.peek() {
                dt = dt.min(rt - t);
            }
            self.advance(&mut active, &rates, dt, &mut t, &mut link_busy);

            let mut i = 0;
            while i < active.len() {
                let flow = &active[i];
                if flow.remaining > DRAIN_EPS * self.jobs[flow.job].bytes.max(1.0) {
                    i += 1;
                    continue;
                }
                let job = active.swap_remove(i).job;
                completed += 1;
                let step = self.jobs[job].step;
                step_completion[step] = step_completion[step].max(t);
                for &s in &succ[job] {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        ready.push(Reverse((OrdF64(t + alpha * self.alpha_factor[s]), s)));
                    }
                }
            }
        }
        Ok(Outcome {
            completion: t,
            step_completion,
            link_busy,
            max_concurrent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_mcf::tsmcf::{solve_tsmcf, solve_tsmcf_auto};
    use a2a_topology::generators;

    fn chunked(topo: &Topology, steps: Option<usize>) -> ChunkedSchedule {
        let sol = match steps {
            Some(s) => solve_tsmcf(topo, s).unwrap(),
            None => solve_tsmcf_auto(topo).unwrap(),
        };
        ChunkedSchedule::from_tsmcf(topo, &sol, 128).unwrap()
    }

    #[test]
    fn synchronized_engine_matches_the_analytic_model() {
        for topo in [
            generators::complete(4),
            generators::ring(4),
            generators::hypercube(3),
        ] {
            let sched = chunked(&topo, None);
            let params = SimParams::default();
            let shard = 8.0 * 1024.0 * 1024.0;
            let analytic = crate::simulate_chunked_schedule(&topo, &sched, shard, &params);
            let event =
                simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                    .unwrap();
            let rel = (analytic.completion_seconds - event.report.completion_seconds).abs()
                / analytic.completion_seconds;
            assert!(
                rel < 1e-9,
                "{}: analytic {} vs event {}",
                topo.name(),
                analytic.completion_seconds,
                event.report.completion_seconds
            );
        }
    }

    /// Asynchronous execution is bracketed, not dominated: overlapping steps can
    /// contend on the bottleneck link (fair sharing is work-conserving but not
    /// makespan-monotone), so dependency-driven completion may exceed the barrier
    /// model by a small factor at large buffers — but it can never beat the
    /// busiest-link drain bound, and at small buffers it must win by skipping the
    /// per-step synchronizations (the Fig. 4 cut-through observation).
    #[test]
    fn dependency_driven_is_bracketed_by_drain_bound_and_sync_overhead() {
        for topo in [
            generators::ring(4),
            generators::hypercube(3),
            generators::torus(&[3, 3]),
        ] {
            let sched = chunked(&topo, None);
            let params = SimParams::default();
            let dep_opts = EventSimOptions {
                model: ExecutionModel::DependencyDriven,
                ..EventSimOptions::default()
            };

            let shard = 4.0 * 1024.0 * 1024.0;
            let sync =
                simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                    .unwrap();
            let dep = simulate_chunked_event(&topo, &sched, shard, &params, &dep_opts).unwrap();
            assert_eq!(dep.num_jobs, sync.num_jobs);
            // Lower bound: no execution drains the busiest link faster than the link.
            let bw = params.link_bandwidth_gbps * 1e9;
            let busiest_bytes = dep.per_link.iter().map(|l| l.bytes).fold(0.0, f64::max);
            assert!(
                dep.report.completion_seconds >= busiest_bytes / bw - 1e-12,
                "{}: dep {} beats the busiest-link bound {}",
                topo.name(),
                dep.report.completion_seconds,
                busiest_bytes / bw
            );
            // Upper bound: overlap-induced contention stays a modest constant factor.
            assert!(
                dep.report.completion_seconds <= sync.report.completion_seconds * 1.25,
                "{}: dep {} vs sync {}",
                topo.name(),
                dep.report.completion_seconds,
                sync.report.completion_seconds
            );

            // Latency-bound regime: skipping the barrier must win outright.
            let tiny = 512.0;
            let sync_tiny =
                simulate_chunked_event(&topo, &sched, tiny, &params, &EventSimOptions::default())
                    .unwrap();
            let dep_tiny = simulate_chunked_event(&topo, &sched, tiny, &params, &dep_opts).unwrap();
            assert!(
                dep_tiny.report.completion_seconds < sync_tiny.report.completion_seconds,
                "{}: dep {} should beat sync {} at tiny buffers",
                topo.name(),
                dep_tiny.report.completion_seconds,
                sync_tiny.report.completion_seconds
            );
        }
    }

    #[test]
    fn per_link_stats_account_for_every_byte() {
        let topo = generators::hypercube(3);
        let sched = chunked(&topo, None);
        let shard = 1024.0 * 1024.0;
        let chunk = shard / sched.chunks_per_shard as f64;
        let expected: f64 = sched
            .steps
            .iter()
            .flat_map(|s| s.transfers.iter())
            .map(|t| t.chunks as f64 * chunk)
            .sum();
        let rep = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &SimParams::default(),
            &EventSimOptions::default(),
        )
        .unwrap();
        let total: f64 = rep.per_link.iter().map(|l| l.bytes).sum();
        assert!((total - expected).abs() < 1e-6 * expected);
        assert!(rep.peak_link_utilization() <= 1.0 + 1e-9);
        assert!(rep.peak_link_utilization() > 0.0);
        assert!(rep.max_concurrent_flows >= 1);
        // Step completions are monotone in synchronized mode.
        assert!(rep
            .step_completion_secs
            .windows(2)
            .all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn link_slowdown_stretches_completion() {
        let topo = generators::torus(&[3, 3]);
        let sched = chunked(&topo, None);
        let params = SimParams::default();
        let shard = 4.0 * 1024.0 * 1024.0;
        let nominal =
            simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                .unwrap();
        // Slow a link the schedule actually uses.
        let used = nominal
            .per_link
            .iter()
            .position(|l| l.bytes > 0.0)
            .expect("some link carries traffic");
        let slow = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &EventSimOptions {
                scenario: Scenario::nominal().with_link_slowdown(used, 0.25),
                ..EventSimOptions::default()
            },
        )
        .unwrap();
        assert!(
            slow.report.completion_seconds > nominal.report.completion_seconds,
            "slowdown {} must exceed nominal {}",
            slow.report.completion_seconds,
            nominal.report.completion_seconds
        );
    }

    #[test]
    fn straggler_nodes_slow_their_sends() {
        let topo = generators::hypercube(3);
        let sched = chunked(&topo, None);
        let params = SimParams::default();
        let shard = 4.0 * 1024.0 * 1024.0;
        let nominal =
            simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                .unwrap();
        let straggle = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &EventSimOptions {
                scenario: Scenario::nominal().with_straggler(0, 0.1),
                ..EventSimOptions::default()
            },
        )
        .unwrap();
        assert!(
            straggle.report.completion_seconds > nominal.report.completion_seconds * 1.5,
            "straggler {} vs nominal {}",
            straggle.report.completion_seconds,
            nominal.report.completion_seconds
        );
    }

    #[test]
    fn failed_link_reports_the_offending_transfer() {
        let topo = generators::ring(3);
        let sched = chunked(&topo, None);
        // Every link of a directed 3-ring is used by the all-to-all.
        let err = simulate_chunked_event(
            &topo,
            &sched,
            1024.0,
            &SimParams::default(),
            &EventSimOptions {
                scenario: Scenario::nominal().with_failed_link(0),
                ..EventSimOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::FailedLink { .. }), "{err}");
    }

    #[test]
    fn host_injection_caps_the_event_engine() {
        let topo = generators::complete(4);
        let sched = chunked(&topo, Some(1));
        let shard = 16.0 * 1024.0 * 1024.0;
        let free = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &SimParams::default(),
            &EventSimOptions::default(),
        )
        .unwrap();
        let capped_params = SimParams {
            host_injection_gbps: Some(1.0),
            ..SimParams::default()
        };
        let capped = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &capped_params,
            &EventSimOptions::default(),
        )
        .unwrap();
        assert!(capped.report.completion_seconds > free.report.completion_seconds);
        // 3 shards of 16 MiB per node at 1 GB/s injection is at least 48 ms.
        assert!(capped.report.completion_seconds >= 3.0 * shard / 1e9 - 1e-9);
    }

    #[test]
    fn empty_timeline_reproduces_the_static_engine_exactly() {
        for topo in [
            generators::hypercube(3),
            generators::torus(&[3, 3]),
            generators::ring(4),
        ] {
            let sched = chunked(&topo, None);
            let params = SimParams::default();
            let shard = 4.0 * 1024.0 * 1024.0;
            let scenario = Scenario::nominal().with_alpha_jitter(9, 1.0, 2.0);
            let static_rep = simulate_chunked_event(
                &topo,
                &sched,
                shard,
                &params,
                &EventSimOptions {
                    scenario: scenario.clone(),
                    ..EventSimOptions::default()
                },
            )
            .unwrap();
            let analytic =
                crate::simulate_chunked_schedule_with(&topo, &sched, shard, &params, &scenario)
                    .unwrap();
            let tl = ScenarioTimeline::new(scenario);
            let TimelineRun::Completed(tl_rep) = simulate_chunked_timeline(
                &topo,
                &sched,
                shard,
                &params,
                &tl,
                ExecutionModel::Synchronized,
            )
            .unwrap() else {
                panic!("empty timeline must complete");
            };
            // Bit-for-bit against the static event engine.
            assert_eq!(
                tl_rep.report.completion_seconds,
                static_rep.report.completion_seconds
            );
            assert_eq!(tl_rep.step_completion_secs, static_rep.step_completion_secs);
            // And the analytic == event-sync 1e-9 contract survives.
            let rel = (analytic.completion_seconds - tl_rep.report.completion_seconds).abs()
                / analytic.completion_seconds;
            assert!(rel < 1e-9, "{}: rel {rel}", topo.name());
        }
    }

    #[test]
    fn t_zero_failure_rejects_like_the_static_scenario() {
        let topo = generators::ring(3);
        let sched = chunked(&topo, None);
        let static_err = simulate_chunked_event(
            &topo,
            &sched,
            1024.0,
            &SimParams::default(),
            &EventSimOptions {
                scenario: Scenario::nominal().with_failed_link(0),
                ..EventSimOptions::default()
            },
        )
        .unwrap_err();
        let tl = ScenarioTimeline::nominal().with_link_failure_at(0.0, 0);
        let tl_err = simulate_chunked_timeline(
            &topo,
            &sched,
            1024.0,
            &SimParams::default(),
            &tl,
            ExecutionModel::Synchronized,
        )
        .unwrap_err();
        assert!(matches!(tl_err, SimError::FailedLink { .. }));
        assert_eq!(
            tl_err, static_err,
            "t=0 failure must match the static rejection"
        );
    }

    #[test]
    fn nonfatal_timeline_events_rerate_without_interrupting() {
        let topo = generators::torus(&[3, 3]);
        let sched = chunked(&topo, None);
        let params = SimParams::default();
        let shard = 4.0 * 1024.0 * 1024.0;
        let nominal =
            simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                .unwrap();
        let used = nominal
            .per_link
            .iter()
            .position(|l| l.bytes > 0.0)
            .expect("some link carries traffic");
        let mid = nominal.report.completion_seconds * 0.3;
        // Degrade mid-run: completes, slower than nominal, faster than degraded-from-t0.
        let tl = ScenarioTimeline::nominal().with_link_degrade_at(mid, used, 0.1);
        let TimelineRun::Completed(mid_deg) = simulate_chunked_timeline(
            &topo,
            &sched,
            shard,
            &params,
            &tl,
            ExecutionModel::Synchronized,
        )
        .unwrap() else {
            panic!("degrade must not interrupt");
        };
        let from_start = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &params,
            &EventSimOptions {
                scenario: Scenario::nominal().with_link_slowdown(used, 0.1),
                ..EventSimOptions::default()
            },
        )
        .unwrap();
        assert!(
            mid_deg.report.completion_seconds > nominal.report.completion_seconds,
            "mid-run degrade {} must exceed nominal {}",
            mid_deg.report.completion_seconds,
            nominal.report.completion_seconds
        );
        assert!(
            mid_deg.report.completion_seconds < from_start.report.completion_seconds,
            "mid-run degrade {} must beat degraded-from-start {}",
            mid_deg.report.completion_seconds,
            from_start.report.completion_seconds
        );
        // A failure with no remaining work on the link never interrupts.
        let tl = ScenarioTimeline::nominal()
            .with_link_failure_at(nominal.report.completion_seconds * 1.5, used);
        let run = simulate_chunked_timeline(
            &topo,
            &sched,
            shard,
            &params,
            &tl,
            ExecutionModel::Synchronized,
        )
        .unwrap();
        let TimelineRun::Completed(rep) = run else {
            panic!("failing an unused link must not interrupt");
        };
        assert_eq!(
            rep.report.completion_seconds,
            nominal.report.completion_seconds
        );
    }

    #[test]
    fn mid_run_failure_snapshot_conserves_every_byte() {
        let topo = generators::torus(&[3, 3]);
        let sched = chunked(&topo, None);
        let params = SimParams::default();
        let shard = 4.0 * 1024.0 * 1024.0;
        let nominal =
            simulate_chunked_event(&topo, &sched, shard, &params, &EventSimOptions::default())
                .unwrap();
        let used = nominal
            .per_link
            .iter()
            .position(|l| l.bytes > 0.0)
            .expect("some link carries traffic");
        // Sweep several cut times; each snapshot must balance its ledger exactly.
        let mut interrupted = 0;
        for frac in [0.15, 0.35, 0.55, 0.75, 0.95] {
            let t_fail = nominal.report.completion_seconds * frac;
            let tl = ScenarioTimeline::nominal().with_link_failure_at(t_fail, used);
            let run = simulate_chunked_timeline(
                &topo,
                &sched,
                shard,
                &params,
                &tl,
                ExecutionModel::Synchronized,
            )
            .unwrap();
            let TimelineRun::Interrupted(snap) = run else {
                continue;
            };
            interrupted += 1;
            assert_eq!(snap.failed_links, vec![used]);
            assert!((snap.time - t_fail).abs() < 1e-12);
            // Chunk ledger: exact integers.
            assert_eq!(
                snap.delivered_chunks + snap.buffered_chunks + snap.stranded_chunks,
                snap.total_chunks()
            );
            let held: usize = snap.holdings.iter().map(|h| h.chunks).sum();
            assert_eq!(held, snap.total_chunks());
            // Byte ledger: delivered + buffered + stranded + in-flight == total.
            let total = snap.delivered_bytes
                + snap.buffered_bytes
                + snap.stranded_bytes
                + snap.in_flight_bytes;
            assert!(
                (total - snap.total_bytes()).abs() < 1e-6 * snap.total_bytes(),
                "byte ledger {total} vs {}",
                snap.total_bytes()
            );
            // Each cut transfer contributes at most one partially-drained chunk.
            let chunk = shard / snap.chunks_per_shard as f64;
            let widest_step = sched.steps.iter().map(|s| s.transfers.len()).max().unwrap();
            assert!(snap.in_flight_bytes <= widest_step as f64 * chunk + 1e-9);
            // Prefix transfers never exceed the original schedule's.
            assert!(snap.executed_prefix.len() <= sched.steps.len());
        }
        assert!(
            interrupted >= 2,
            "expected several cut times to interrupt, got {interrupted}"
        );
    }

    #[test]
    fn qp_contention_slows_flow_heavy_links() {
        let topo = generators::torus(&[3, 3]);
        let sched = chunked(&topo, None);
        let shard = 4.0 * 1024.0 * 1024.0;
        let clean = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &SimParams::default(),
            &EventSimOptions::default(),
        )
        .unwrap();
        let contended_params = SimParams {
            qp_contention: Some(crate::QpContention {
                free_flows_per_link: 1,
                penalty_per_flow: 0.5,
            }),
            ..SimParams::default()
        };
        let contended = simulate_chunked_event(
            &topo,
            &sched,
            shard,
            &contended_params,
            &EventSimOptions::default(),
        )
        .unwrap();
        assert!(
            contended.report.completion_seconds >= clean.report.completion_seconds,
            "contended {} vs clean {}",
            contended.report.completion_seconds,
            clean.report.completion_seconds
        );
    }
}
