//! # a2a-simnet
//!
//! Discrete network simulator standing in for the paper's two testbeds (§5.1): the
//! 8-node A100/Telescent patch-panel cluster (MSCCL runtime, store-and-forward) and
//! the 27-node TACC torus on the Cerio fabric (OMPI/UCX runtime, cut-through source
//! routing). The simulator executes lowered schedules under an α–β cost model:
//!
//! * [`linksim`] — synchronized store-and-forward execution of time-stepped (link-based)
//!   schedules: each step lasts as long as its busiest link plus a synchronization α.
//! * [`pathsim`] — flow-level cut-through execution of weighted path schedules: the
//!   collective finishes when the busiest link has drained, subject to optional
//!   host-injection limits and a queue-pair contention penalty (the §5.5 practical
//!   limitation of the Cerio fabric).
//!
//! Both report the paper's throughput metric `(N - 1) · m / T` so the figure harnesses
//! can sweep buffer sizes exactly like Figs. 3–5.

pub mod linksim;
pub mod pathsim;

pub use linksim::{simulate_chunked_schedule, simulate_link_schedule};
pub use pathsim::simulate_path_schedule;

/// Cost-model parameters of the simulated fabric.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Per-link bandwidth in GB/s for a capacity-1.0 link (the paper's Cerio links are
    /// 25 Gbps = 3.125 GB/s).
    pub link_bandwidth_gbps: f64,
    /// Synchronization latency added to every communication step of a store-and-forward
    /// schedule, in seconds.
    pub step_sync_latency_s: f64,
    /// Per-hop latency of cut-through routing, in seconds.
    pub per_hop_latency_s: f64,
    /// Host injection/ejection bandwidth in GB/s, if it is a potential bottleneck
    /// (100 Gbps = 12.5 GB/s on the paper's hosts).
    pub host_injection_gbps: Option<f64>,
    /// Optional queue-pair contention model for path-based schedules.
    pub qp_contention: Option<QpContention>,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            link_bandwidth_gbps: 3.125,
            step_sync_latency_s: 30e-6,
            per_hop_latency_s: 2e-6,
            host_injection_gbps: None,
            qp_contention: None,
        }
    }
}

impl SimParams {
    /// Parameters resembling the paper's GPU testbed (MSCCL over the patch panel).
    pub fn gpu_testbed() -> Self {
        Self::default()
    }

    /// Parameters resembling the TACC torus cluster: 100 Gbps host injection and a mild
    /// queue-pair contention penalty (§5.5).
    pub fn tacc_cluster() -> Self {
        Self {
            host_injection_gbps: Some(12.5),
            qp_contention: Some(QpContention {
                free_flows_per_link: 8,
                penalty_per_flow: 0.01,
            }),
            ..Self::default()
        }
    }
}

/// Queue-pair contention: every flow beyond `free_flows_per_link` sharing a link costs
/// a `penalty_per_flow` fraction of that link's effective bandwidth (reproducing the
/// reduction in per-flow bandwidth the paper measured as QP counts grow).
#[derive(Debug, Clone, Copy)]
pub struct QpContention {
    /// Number of concurrent flows a link sustains at full rate.
    pub free_flows_per_link: usize,
    /// Fractional bandwidth loss per additional flow.
    pub penalty_per_flow: f64,
}

impl QpContention {
    /// Effective bandwidth multiplier for a link carrying `flows` concurrent flows.
    pub fn bandwidth_factor(&self, flows: usize) -> f64 {
        let excess = flows.saturating_sub(self.free_flows_per_link) as f64;
        1.0 / (1.0 + self.penalty_per_flow * excess)
    }
}

/// Result of simulating one all-to-all execution.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Number of participating endpoints.
    pub num_nodes: usize,
    /// Shard size in bytes (each endpoint sends one shard to every other endpoint).
    pub shard_bytes: f64,
    /// Completion time of the collective in seconds.
    pub completion_seconds: f64,
    /// Algorithm bandwidth `(N - 1) · m / T` in GB/s — the paper's throughput metric.
    pub throughput_gbps: f64,
}

impl SimReport {
    /// Builds a report from its raw ingredients.
    pub fn new(num_nodes: usize, shard_bytes: f64, completion_seconds: f64) -> Self {
        let bytes = (num_nodes.saturating_sub(1)) as f64 * shard_bytes;
        let throughput_gbps = if completion_seconds > 0.0 {
            bytes / completion_seconds / 1e9
        } else {
            0.0
        };
        Self {
            num_nodes,
            shard_bytes,
            completion_seconds,
            throughput_gbps,
        }
    }
}

/// Converts a per-node all-to-all buffer size (the x-axis of Figs. 3–5: `N` shards of
/// `m` bytes each) into the shard size `m`.
pub fn shard_bytes_for_buffer(buffer_bytes: f64, num_nodes: usize) -> f64 {
    buffer_bytes / num_nodes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_paper_throughput_metric() {
        // 27 nodes, 1 MiB shards, 4.5 ms completion.
        let r = SimReport::new(27, 1_048_576.0, 4.5e-3);
        assert!((r.throughput_gbps - 26.0 * 1_048_576.0 / 4.5e-3 / 1e9).abs() < 1e-9);
        assert_eq!(r.num_nodes, 27);
    }

    #[test]
    fn zero_time_yields_zero_throughput() {
        let r = SimReport::new(8, 100.0, 0.0);
        assert_eq!(r.throughput_gbps, 0.0);
    }

    #[test]
    fn buffer_to_shard_conversion() {
        assert_eq!(shard_bytes_for_buffer(2.0_f64.powi(20), 8), 131072.0);
        assert_eq!(shard_bytes_for_buffer(100.0, 0), 100.0);
    }

    #[test]
    fn qp_contention_factor_decreases_with_flows() {
        let qp = QpContention {
            free_flows_per_link: 4,
            penalty_per_flow: 0.1,
        };
        assert_eq!(qp.bandwidth_factor(2), 1.0);
        assert_eq!(qp.bandwidth_factor(4), 1.0);
        assert!(qp.bandwidth_factor(8) < 1.0);
        assert!(qp.bandwidth_factor(16) < qp.bandwidth_factor(8));
    }

    #[test]
    fn presets_reflect_testbeds() {
        let gpu = SimParams::gpu_testbed();
        assert!(gpu.host_injection_gbps.is_none());
        let tacc = SimParams::tacc_cluster();
        assert_eq!(tacc.host_injection_gbps, Some(12.5));
        assert!(tacc.qp_contention.is_some());
    }
}
