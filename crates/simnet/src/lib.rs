//! # a2a-simnet
//!
//! Network simulator standing in for the paper's two testbeds (§5.1): the 8-node
//! A100/Telescent patch-panel cluster (MSCCL runtime, store-and-forward) and the
//! 27-node TACC torus on the Cerio fabric (OMPI/UCX runtime, cut-through source
//! routing). Schedules execute under an α–β cost model; two families of backends are
//! provided behind the [`ScheduleSimulator`] trait:
//!
//! * [`event`] — the **discrete-event flow-level engine**: chunk transfers drain as
//!   fluid flows under per-link max-min fair sharing (folding in the optional
//!   [`QpContention`] factor and host-injection caps), either step-synchronized or
//!   data-dependency-driven (a chunk departs only after its inbound copy lands, per
//!   the [`a2a_schedule::TransferDag`]). Supports degradation [`Scenario`]s — per-link
//!   bandwidth overrides, seeded slowdowns and failures, straggler nodes — and
//!   reports per-link utilization and per-step completion times next to the headline
//!   [`SimReport`].
//! * [`linksim`] — the closed-form **analytic model** of synchronized
//!   store-and-forward execution: each step lasts as long as its busiest link plus a
//!   synchronization α. The event engine in synchronized mode reproduces it exactly
//!   on nominal fabrics, which is the cross-check pinning both backends to the
//!   LP-predicted bound ([`a2a_mcf::tsmcf::TsMcfSolution::predicted_completion_seconds`]).
//! * [`pathsim`] — flow-level cut-through execution of weighted path schedules: the
//!   collective finishes when the busiest link has drained, subject to optional
//!   host-injection limits and the queue-pair contention penalty (§5.5).
//!
//! The simulator doubles as a **closed-loop digital twin**: [`scenario::ScenarioTimeline`]
//! injects timed mid-run failures/degradations, [`event::simulate_chunked_timeline`]
//! returns an [`InFlightSnapshot`] instead of an error when a failure strands
//! in-flight work, and [`replan`] closes the loop — residual re-solve on the
//! punctured fabric (warm-started from the incumbent column pool), splice onto
//! the executed prefix, resume; greedy shortest-path fallback under a solve-time
//! deadline.
//!
//! All backends report the paper's throughput metric `(N - 1) · m / T` so the figure
//! harnesses can sweep buffer sizes exactly like Figs. 3–5. Units everywhere: bytes,
//! seconds, GB/s (1 GB/s = 1e9 bytes/s).

pub mod event;
pub mod linksim;
pub mod pathsim;
pub mod replan;
pub mod scenario;

pub use event::{
    simulate_chunked_event, simulate_chunked_timeline, ChunkHolding, EventReport, EventSimOptions,
    ExecutionModel, InFlightSnapshot, LinkUsage, SimError, SimResult, TimelineRun,
};
pub use linksim::{
    simulate_chunked_schedule, simulate_chunked_schedule_with, simulate_link_schedule,
};
pub use pathsim::simulate_path_schedule;
pub use replan::{replan_run, IncumbentPool, ReplanAttempt, ReplanError, ReplanOptions, ReplanRun};
pub use scenario::{Scenario, ScenarioTimeline, TimedEvent};

use a2a_schedule::ChunkedSchedule;
use a2a_topology::Topology;

/// Cost-model parameters of the simulated fabric.
///
/// Two presets mirror the paper's testbeds: [`SimParams::gpu_testbed`] and
/// [`SimParams::tacc_cluster`].
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Per-link bandwidth in GB/s for a capacity-1.0 link (the paper's Cerio links are
    /// 25 Gbps = 3.125 GB/s). A link of capacity `c` runs at `c` times this rate.
    pub link_bandwidth_gbps: f64,
    /// Synchronization latency added to every communication step of a store-and-forward
    /// schedule, in seconds — the α of the synchronized execution model.
    pub step_sync_latency_s: f64,
    /// Per-hop latency of cut-through / asynchronous forwarding, in seconds — the α of
    /// the dependency-driven execution model (charged per transfer).
    pub per_hop_latency_s: f64,
    /// Host injection/ejection bandwidth in GB/s, if it is a potential bottleneck
    /// (100 Gbps = 12.5 GB/s on the paper's hosts). `None` disables the cap.
    pub host_injection_gbps: Option<f64>,
    /// Optional queue-pair contention model: links carrying many concurrent flows lose
    /// effective bandwidth (§5.5). `None` disables the penalty.
    pub qp_contention: Option<QpContention>,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            link_bandwidth_gbps: 3.125,
            step_sync_latency_s: 30e-6,
            per_hop_latency_s: 2e-6,
            host_injection_gbps: None,
            qp_contention: None,
        }
    }
}

impl SimParams {
    /// Parameters resembling the paper's GPU testbed: 8 A100 nodes behind a Telescent
    /// patch panel running MSCCL. 25 Gbps (3.125 GB/s) links, a 30 µs per-step
    /// synchronization latency, 2 µs per hop, and *no* host-injection or queue-pair
    /// limits — the GPUs drive their NICs directly, so the links are the only
    /// bottleneck. (Currently identical to [`SimParams::default`].)
    pub fn gpu_testbed() -> Self {
        Self::default()
    }

    /// Parameters resembling the 27-node TACC torus on the Cerio fabric: the same
    /// 25 Gbps links, plus the two practical effects §5.2/§5.5 measured on that
    /// cluster — a 100 Gbps (12.5 GB/s) host injection/ejection cap, and a mild
    /// queue-pair contention penalty (per-flow bandwidth degrades once a link carries
    /// more than 8 concurrent flows, 1% per extra flow).
    pub fn tacc_cluster() -> Self {
        Self {
            host_injection_gbps: Some(12.5),
            qp_contention: Some(QpContention {
                free_flows_per_link: 8,
                penalty_per_flow: 0.01,
            }),
            ..Self::default()
        }
    }
}

/// Queue-pair contention: every flow beyond `free_flows_per_link` sharing a link costs
/// a `penalty_per_flow` fraction of that link's effective bandwidth (reproducing the
/// reduction in per-flow bandwidth the paper measured as QP counts grow).
#[derive(Debug, Clone, Copy)]
pub struct QpContention {
    /// Number of concurrent flows a link sustains at full rate.
    pub free_flows_per_link: usize,
    /// Fractional bandwidth loss per additional flow.
    pub penalty_per_flow: f64,
}

impl QpContention {
    /// Effective bandwidth multiplier for a link carrying `flows` concurrent flows.
    pub fn bandwidth_factor(&self, flows: usize) -> f64 {
        let excess = flows.saturating_sub(self.free_flows_per_link) as f64;
        1.0 / (1.0 + self.penalty_per_flow * excess)
    }
}

/// Result of simulating one all-to-all execution.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Number of participating endpoints.
    pub num_nodes: usize,
    /// Shard size in bytes (each endpoint sends one shard to every other endpoint).
    pub shard_bytes: f64,
    /// Completion time of the collective in seconds.
    pub completion_seconds: f64,
    /// Algorithm bandwidth `(N - 1) · m / T` in GB/s — the paper's throughput metric.
    pub throughput_gbps: f64,
}

impl SimReport {
    /// Builds a report from its raw ingredients.
    pub fn new(num_nodes: usize, shard_bytes: f64, completion_seconds: f64) -> Self {
        let bytes = (num_nodes.saturating_sub(1)) as f64 * shard_bytes;
        let throughput_gbps = if completion_seconds > 0.0 {
            bytes / completion_seconds / 1e9
        } else {
            0.0
        };
        Self {
            num_nodes,
            shard_bytes,
            completion_seconds,
            throughput_gbps,
        }
    }
}

/// A backend that executes a [`ChunkedSchedule`] on a topology and reports completion
/// time and throughput.
///
/// Two implementations ship with the crate: [`AnalyticBackend`] (the closed-form
/// synchronized model) and [`EventBackend`] (the discrete-event engine, in either
/// execution model, with scenario support). On nominal fabrics without injection/QP
/// limits, `EventBackend` in synchronized mode agrees with `AnalyticBackend` to
/// round-off — the cross-backend equality tests pin that.
pub trait ScheduleSimulator {
    /// Short backend name for reports and logs.
    fn name(&self) -> &'static str;

    /// Executes `schedule` shipping `shard_bytes` per commodity and reports timing.
    fn simulate(
        &self,
        topo: &Topology,
        schedule: &ChunkedSchedule,
        shard_bytes: f64,
    ) -> SimResult<SimReport>;
}

/// The closed-form synchronized store-and-forward model as a [`ScheduleSimulator`].
///
/// The analytic formula only models link bandwidths and the per-step
/// synchronization latency: the [`SimParams::host_injection_gbps`] and
/// [`SimParams::qp_contention`] fields are **ignored** (use [`EventBackend`] for
/// those effects), which is why the cross-backend equality with the event engine is
/// stated for parameter sets without them.
#[derive(Debug, Clone, Default)]
pub struct AnalyticBackend {
    /// Cost-model parameters.
    pub params: SimParams,
    /// Fabric perturbations (failed links make the simulation fail; bandwidth knobs
    /// reshape per-step durations).
    pub scenario: Scenario,
}

impl ScheduleSimulator for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn simulate(
        &self,
        topo: &Topology,
        schedule: &ChunkedSchedule,
        shard_bytes: f64,
    ) -> SimResult<SimReport> {
        simulate_chunked_schedule_with(topo, schedule, shard_bytes, &self.params, &self.scenario)
    }
}

/// The discrete-event engine as a [`ScheduleSimulator`].
#[derive(Debug, Clone, Default)]
pub struct EventBackend {
    /// Cost-model parameters.
    pub params: SimParams,
    /// Execution model and scenario.
    pub options: EventSimOptions,
}

impl EventBackend {
    /// An event backend running the dependency-driven (asynchronous) model.
    pub fn dependency_driven(params: SimParams) -> Self {
        Self {
            params,
            options: EventSimOptions {
                model: ExecutionModel::DependencyDriven,
                scenario: Scenario::nominal(),
            },
        }
    }
}

impl ScheduleSimulator for EventBackend {
    fn name(&self) -> &'static str {
        match self.options.model {
            ExecutionModel::Synchronized => "event-sync",
            ExecutionModel::DependencyDriven => "event-dep",
        }
    }

    fn simulate(
        &self,
        topo: &Topology,
        schedule: &ChunkedSchedule,
        shard_bytes: f64,
    ) -> SimResult<SimReport> {
        simulate_chunked_event(topo, schedule, shard_bytes, &self.params, &self.options)
            .map(|r| r.report)
    }
}

/// Converts a per-node all-to-all buffer size (the x-axis of Figs. 3–5: `N` shards of
/// `m` bytes each) into the shard size `m`.
pub fn shard_bytes_for_buffer(buffer_bytes: f64, num_nodes: usize) -> f64 {
    buffer_bytes / num_nodes.max(1) as f64
}

/// Agreement window `(lower, upper)` asserted between the synchronized event
/// engine's completion time and the tsMCF LP-predicted bound
/// ([`a2a_mcf::tsmcf::TsMcfSolution::predicted_completion_seconds`] of the *pruned*
/// solution) when schedules are quantized at 128 chunks per shard. The budget covers
/// nearest-1/128-shard rounding (measured: within 1% across all evaluated topology
/// families). Shared by the cross-backend test suite and the perf harness's
/// quick-tier sim smoke gate so the two contracts cannot drift apart.
pub const SIM_VS_LP_AGREEMENT_WINDOW: (f64, f64) = (0.98, 1.05);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_paper_throughput_metric() {
        // 27 nodes, 1 MiB shards, 4.5 ms completion.
        let r = SimReport::new(27, 1_048_576.0, 4.5e-3);
        assert!((r.throughput_gbps - 26.0 * 1_048_576.0 / 4.5e-3 / 1e9).abs() < 1e-9);
        assert_eq!(r.num_nodes, 27);
    }

    #[test]
    fn zero_time_yields_zero_throughput() {
        let r = SimReport::new(8, 100.0, 0.0);
        assert_eq!(r.throughput_gbps, 0.0);
    }

    #[test]
    fn buffer_to_shard_conversion() {
        assert_eq!(shard_bytes_for_buffer(2.0_f64.powi(20), 8), 131072.0);
        assert_eq!(shard_bytes_for_buffer(100.0, 0), 100.0);
    }

    #[test]
    fn qp_contention_factor_decreases_with_flows() {
        let qp = QpContention {
            free_flows_per_link: 4,
            penalty_per_flow: 0.1,
        };
        assert_eq!(qp.bandwidth_factor(2), 1.0);
        assert_eq!(qp.bandwidth_factor(4), 1.0);
        assert!(qp.bandwidth_factor(8) < 1.0);
        assert!(qp.bandwidth_factor(16) < qp.bandwidth_factor(8));
    }

    #[test]
    fn presets_reflect_testbeds() {
        let gpu = SimParams::gpu_testbed();
        assert!(gpu.host_injection_gbps.is_none());
        let tacc = SimParams::tacc_cluster();
        assert_eq!(tacc.host_injection_gbps, Some(12.5));
        assert!(tacc.qp_contention.is_some());
    }

    #[test]
    fn backend_names_identify_the_model() {
        assert_eq!(AnalyticBackend::default().name(), "analytic");
        assert_eq!(EventBackend::default().name(), "event-sync");
        assert_eq!(
            EventBackend::dependency_driven(SimParams::default()).name(),
            "event-dep"
        );
    }
}
