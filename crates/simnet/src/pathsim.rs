//! Flow-level cut-through execution of weighted path (route-based) schedules.
//!
//! All flows start simultaneously (as the OMPI/UCX interpreter posts all sends up
//! front); links are shared fairly, so the collective completes when the busiest link
//! has drained its total assigned bytes. Optional host-injection limits and queue-pair
//! contention reproduce the practical effects discussed in §5.2 and §5.5.

use a2a_mcf::PathSchedule;
use a2a_topology::Topology;

use crate::{SimParams, SimReport};

/// Simulates a weighted path schedule shipping one shard per commodity.
pub fn simulate_path_schedule(
    topo: &Topology,
    schedule: &PathSchedule,
    shard_bytes: f64,
    params: &SimParams,
) -> SimReport {
    let n = schedule.commodities.num_endpoints();
    let mut per_link_bytes = vec![0.0f64; topo.num_edges()];
    let mut per_link_flows = vec![0usize; topo.num_edges()];
    let mut max_hops = 0usize;
    for (idx, _, _) in schedule.commodities.iter() {
        for (path, weight) in &schedule.paths[idx] {
            max_hops = max_hops.max(path.hops());
            for (u, v) in path.links() {
                let e = topo
                    .find_edge(u, v)
                    .expect("schedule paths use fabric links");
                per_link_bytes[e] += weight * shard_bytes;
                per_link_flows[e] += 1;
            }
        }
    }

    // Busiest-link drain time, with optional QP contention shrinking effective
    // bandwidth on links carrying many concurrent flows.
    let mut link_time = 0.0f64;
    for (e, &bytes) in per_link_bytes.iter().enumerate() {
        if bytes <= 0.0 {
            continue;
        }
        let mut bandwidth = params.link_bandwidth_gbps * 1e9 * topo.edge(e).capacity;
        if let Some(qp) = params.qp_contention {
            bandwidth *= qp.bandwidth_factor(per_link_flows[e]);
        }
        link_time = link_time.max(bytes / bandwidth);
    }

    // Host injection / ejection: every endpoint sources and sinks (N - 1) shards.
    let injection_time = params
        .host_injection_gbps
        .map(|bw| (n.saturating_sub(1)) as f64 * shard_bytes / (bw * 1e9))
        .unwrap_or(0.0);

    let completion = link_time.max(injection_time) + max_hops as f64 * params.per_hop_latency_s;
    SimReport::new(n, shard_bytes, completion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_baselines::{naive_point_to_point, sssp_schedule};
    use a2a_mcf::pmcf::{solve_path_mcf, PathSetKind};
    use a2a_mcf::{extract_widest_paths, solve_decomposed_mcf, throughput_upper_bound};
    use a2a_topology::generators;

    #[test]
    fn pmcf_hits_the_throughput_upper_bound_at_large_buffers() {
        let topo = generators::hypercube(3);
        let sched = solve_path_mcf(&topo, PathSetKind::EdgeDisjoint).unwrap();
        let params = SimParams::default();
        let report = simulate_path_schedule(&topo, &sched, 256.0 * 1024.0 * 1024.0, &params);
        let bound = throughput_upper_bound(8, 0.25, params.link_bandwidth_gbps);
        assert!(report.throughput_gbps <= bound * 1.001);
        assert!(report.throughput_gbps > 0.95 * bound);
    }

    #[test]
    fn cut_through_beats_store_and_forward_at_small_buffers() {
        // Fig. 4 observation: path-based schedules win at small buffers because they
        // avoid the per-step synchronization of tsMCF.
        let topo = generators::hypercube(3);
        let routed = solve_path_mcf(&topo, PathSetKind::EdgeDisjoint).unwrap();
        let stepped = a2a_mcf::tsmcf::solve_tsmcf_auto(&topo).unwrap();
        let params = SimParams::default();
        let shard = 2048.0;
        let fast = simulate_path_schedule(&topo, &routed, shard, &params);
        let slow = crate::linksim::simulate_link_schedule(&topo, &stepped, shard, &params);
        assert!(fast.throughput_gbps > slow.throughput_gbps);
    }

    #[test]
    fn mcf_extract_beats_naive_on_bipartite() {
        // Fig. 4 (left): MCF-extP outperforms the NCCL/OMPI native baseline by a wide
        // margin on the complete bipartite topology.
        let topo = generators::complete_bipartite(4, 4);
        let mcf =
            extract_widest_paths(&topo, &solve_decomposed_mcf(&topo).unwrap().solution).unwrap();
        let naive = naive_point_to_point(&topo).unwrap();
        let params = SimParams::default();
        let shard = 64.0 * 1024.0 * 1024.0;
        let a = simulate_path_schedule(&topo, &mcf, shard, &params);
        let b = simulate_path_schedule(&topo, &naive, shard, &params);
        assert!(
            a.throughput_gbps > 1.3 * b.throughput_gbps,
            "MCF-extP {} vs naive {}",
            a.throughput_gbps,
            b.throughput_gbps
        );
    }

    #[test]
    fn host_injection_caps_throughput() {
        let topo = generators::torus(&[3, 3]);
        let sched = sssp_schedule(&topo).unwrap();
        let shard = 32.0 * 1024.0 * 1024.0;
        let unlimited = simulate_path_schedule(&topo, &sched, shard, &SimParams::default());
        let capped_params = SimParams {
            host_injection_gbps: Some(0.5),
            ..SimParams::default()
        };
        let capped = simulate_path_schedule(&topo, &sched, shard, &capped_params);
        assert!(capped.throughput_gbps < unlimited.throughput_gbps);
        // With a 0.5 GB/s injection cap the throughput cannot exceed (N-1)m / ((N-1)m/0.5) = 0.5.
        assert!(capped.throughput_gbps <= 0.5 + 1e-9);
    }

    #[test]
    fn qp_contention_slows_chunk_heavy_schedules() {
        let topo = generators::torus(&[3, 3]);
        let sched =
            extract_widest_paths(&topo, &solve_decomposed_mcf(&topo).unwrap().solution).unwrap();
        let shard = 32.0 * 1024.0 * 1024.0;
        let clean = simulate_path_schedule(&topo, &sched, shard, &SimParams::default());
        let contended_params = SimParams {
            qp_contention: Some(crate::QpContention {
                free_flows_per_link: 1,
                penalty_per_flow: 0.2,
            }),
            ..SimParams::default()
        };
        let contended = simulate_path_schedule(&topo, &sched, shard, &contended_params);
        assert!(contended.throughput_gbps < clean.throughput_gbps);
    }
}
