//! Degradation scenarios: per-link bandwidth overrides, slowdowns, failures and
//! straggler nodes.
//!
//! A [`Scenario`] perturbs the nominal fabric the simulator executes on, without
//! touching the [`a2a_topology::Topology`] the schedule was solved for — exactly the
//! situation of a schedule running on degraded hardware. Knobs:
//!
//! * **Bandwidth overrides** — pin a directed link to an absolute bandwidth in GB/s
//!   (heterogeneous fabrics: a few slow optics in an otherwise uniform torus).
//! * **Slowdowns** — multiply a link's nominal bandwidth by a factor in `(0, 1]`
//!   (congested or degraded links).
//! * **Failures** — the link is down for the whole run; any transfer routed over it
//!   makes the simulation fail with [`crate::SimError::FailedLink`]. Re-solving on the
//!   punctured topology and simulating the rerouted schedule under the same scenario
//!   models recovery.
//! * **Stragglers** — a per-node factor multiplying the bandwidth of every link the
//!   node *sends* on (slow host CPU / NIC).
//!
//! Seeded constructors ([`Scenario::seeded_slowdowns`], [`Scenario::seeded_failures`])
//! draw the affected links reproducibly from a ChaCha8 stream so degradation sweeps
//! are repeatable.

use std::collections::{HashMap, HashSet};

use a2a_topology::{EdgeId, NodeId, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::SimParams;

/// A set of fabric perturbations applied during simulation.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Absolute bandwidth (GB/s) replacing the nominal `link_bandwidth · capacity` of
    /// a directed edge.
    bandwidth_overrides: HashMap<EdgeId, f64>,
    /// Multiplicative slowdown per directed edge, in `(0, 1]`.
    slowdowns: HashMap<EdgeId, f64>,
    /// Directed edges that are down for the whole run.
    failed: HashSet<EdgeId>,
    /// Send-side bandwidth multiplier per straggler node, in `(0, 1]`.
    stragglers: HashMap<NodeId, f64>,
}

impl Scenario {
    /// The nominal scenario: no perturbations.
    pub fn nominal() -> Self {
        Self::default()
    }

    /// True if no knob is set (simulating under this scenario is exactly nominal).
    pub fn is_nominal(&self) -> bool {
        self.bandwidth_overrides.is_empty()
            && self.slowdowns.is_empty()
            && self.failed.is_empty()
            && self.stragglers.is_empty()
    }

    /// Pins a directed edge to an absolute bandwidth in GB/s (replacing
    /// `link_bandwidth_gbps · capacity`; slowdowns and straggler factors still apply
    /// on top).
    pub fn with_bandwidth_override(mut self, edge: EdgeId, gbps: f64) -> Self {
        assert!(gbps > 0.0, "override bandwidth must be positive");
        self.bandwidth_overrides.insert(edge, gbps);
        self
    }

    /// Multiplies a directed edge's bandwidth by `factor` in `(0, 1]`.
    pub fn with_link_slowdown(mut self, edge: EdgeId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "slowdown factor must be in (0, 1], got {factor}"
        );
        self.slowdowns.insert(edge, factor);
        self
    }

    /// Marks a directed edge as failed for the whole run.
    pub fn with_failed_link(mut self, edge: EdgeId) -> Self {
        self.failed.insert(edge);
        self
    }

    /// Marks `node` as a straggler: every link it sends on runs at `factor` of its
    /// (possibly already perturbed) bandwidth.
    pub fn with_straggler(mut self, node: NodeId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "straggler factor must be in (0, 1], got {factor}"
        );
        self.stragglers.insert(node, factor);
        self
    }

    /// Draws `count` distinct directed edges (seeded) and slows each by a factor drawn
    /// uniformly from `[min_factor, max_factor]`.
    pub fn seeded_slowdowns(
        topo: &Topology,
        seed: u64,
        count: usize,
        min_factor: f64,
        max_factor: f64,
    ) -> Self {
        assert!(
            0.0 < min_factor && min_factor <= max_factor && max_factor <= 1.0,
            "slowdown factors must satisfy 0 < min <= max <= 1"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scenario = Self::nominal();
        for e in pick_edges(topo, &mut rng, count) {
            let f = min_factor + (max_factor - min_factor) * rng.random_f64();
            scenario.slowdowns.insert(e, f);
        }
        scenario
    }

    /// Fails `count` distinct directed edges drawn from a seeded ChaCha8 stream.
    pub fn seeded_failures(topo: &Topology, seed: u64, count: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scenario = Self::nominal();
        scenario.failed.extend(pick_edges(topo, &mut rng, count));
        scenario
    }

    /// True if the directed edge is failed under this scenario.
    pub fn is_failed(&self, edge: EdgeId) -> bool {
        self.failed.contains(&edge)
    }

    /// The failed edges, in unspecified order.
    pub fn failed_links(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.failed.iter().copied()
    }

    /// Effective bandwidth of a directed edge in bytes/second under this scenario, or
    /// `None` if the edge is failed. Infinite-capacity edges stay infinite (they are
    /// never a bottleneck) unless explicitly overridden.
    pub fn effective_bandwidth(
        &self,
        topo: &Topology,
        edge: EdgeId,
        params: &SimParams,
    ) -> Option<f64> {
        if self.is_failed(edge) {
            return None;
        }
        let e = topo.edge(edge);
        let base_gbps = self
            .bandwidth_overrides
            .get(&edge)
            .copied()
            .unwrap_or(params.link_bandwidth_gbps * e.capacity);
        let slow = self.slowdowns.get(&edge).copied().unwrap_or(1.0);
        let straggle = self.stragglers.get(&e.src).copied().unwrap_or(1.0);
        Some(base_gbps * 1e9 * slow * straggle)
    }
}

/// Picks up to `count` distinct edge ids uniformly without replacement.
fn pick_edges(topo: &Topology, rng: &mut ChaCha8Rng, count: usize) -> Vec<EdgeId> {
    let mut ids: Vec<EdgeId> = (0..topo.num_edges()).collect();
    let count = count.min(ids.len());
    // Partial Fisher–Yates: the first `count` positions end up uniform.
    for i in 0..count {
        let j = i + rng.random_range(0..ids.len() - i);
        ids.swap(i, j);
    }
    ids.truncate(count);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_topology::generators;

    #[test]
    fn nominal_scenario_reproduces_link_bandwidth() {
        let topo = generators::hypercube(3);
        let params = SimParams::default();
        let s = Scenario::nominal();
        assert!(s.is_nominal());
        for e in 0..topo.num_edges() {
            let bw = s.effective_bandwidth(&topo, e, &params).unwrap();
            assert!((bw - params.link_bandwidth_gbps * 1e9).abs() < 1e-6);
        }
    }

    #[test]
    fn knobs_compose_multiplicatively() {
        let mut topo = a2a_topology::Topology::new(2, "pair");
        let e = topo.add_edge(0, 1, 2.0);
        let params = SimParams {
            link_bandwidth_gbps: 10.0,
            ..SimParams::default()
        };
        // Nominal: 10 GB/s * capacity 2 = 20 GB/s.
        let s = Scenario::nominal()
            .with_link_slowdown(e, 0.5)
            .with_straggler(0, 0.5);
        let bw = s.effective_bandwidth(&topo, e, &params).unwrap();
        assert!((bw - 20.0e9 * 0.25).abs() < 1.0);
        // An override replaces the nominal base but still stacks the factors.
        let s = s.with_bandwidth_override(e, 4.0);
        let bw = s.effective_bandwidth(&topo, e, &params).unwrap();
        assert!((bw - 4.0e9 * 0.25).abs() < 1.0);
    }

    #[test]
    fn failed_links_have_no_bandwidth() {
        let topo = generators::ring(4);
        let s = Scenario::nominal().with_failed_link(2);
        assert!(s.is_failed(2));
        assert!(!s.is_failed(1));
        assert!(s
            .effective_bandwidth(&topo, 2, &SimParams::default())
            .is_none());
        assert_eq!(s.failed_links().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn seeded_scenarios_are_reproducible_and_distinct() {
        let topo = generators::torus(&[3, 3]);
        let a = Scenario::seeded_failures(&topo, 7, 3);
        let b = Scenario::seeded_failures(&topo, 7, 3);
        let c = Scenario::seeded_failures(&topo, 8, 3);
        let mut fa: Vec<_> = a.failed_links().collect();
        let mut fb: Vec<_> = b.failed_links().collect();
        fa.sort_unstable();
        fb.sort_unstable();
        assert_eq!(fa, fb, "same seed, same failures");
        assert_eq!(fa.len(), 3);
        let slow = Scenario::seeded_slowdowns(&topo, 11, 4, 0.25, 0.75);
        assert!(!slow.is_nominal());
        for (_, f) in slow.slowdowns.iter() {
            assert!((0.25..=0.75).contains(f));
        }
        // Different seeds should (for this topology/seed pair) pick different sets.
        let fc: Vec<_> = c.failed_links().collect();
        assert!(fa.iter().any(|e| !fc.contains(e)) || fa.len() != fc.len());
    }

    #[test]
    fn count_is_clamped_to_edge_count() {
        let topo = generators::ring(3);
        let s = Scenario::seeded_failures(&topo, 1, 100);
        assert_eq!(s.failed_links().count(), topo.num_edges());
    }
}
