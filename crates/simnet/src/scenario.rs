//! Degradation scenarios: per-link bandwidth overrides, slowdowns, failures and
//! straggler nodes.
//!
//! A [`Scenario`] perturbs the nominal fabric the simulator executes on, without
//! touching the [`a2a_topology::Topology`] the schedule was solved for — exactly the
//! situation of a schedule running on degraded hardware. Knobs:
//!
//! * **Bandwidth overrides** — pin a directed link to an absolute bandwidth in GB/s
//!   (heterogeneous fabrics: a few slow optics in an otherwise uniform torus).
//! * **Slowdowns** — multiply a link's nominal bandwidth by a factor in `(0, 1]`
//!   (congested or degraded links).
//! * **Failures** — the link is down for the whole run; any transfer routed over it
//!   makes the simulation fail with [`crate::SimError::FailedLink`]. Re-solving on the
//!   punctured topology and simulating the rerouted schedule under the same scenario
//!   models recovery.
//! * **Stragglers** — a per-node factor multiplying the bandwidth of every link the
//!   node *sends* on (slow host CPU / NIC).
//! * **Per-message α jitter** — every message's launch latency (the per-step
//!   sync α in synchronized execution, the per-hop α in dependency-driven
//!   execution) is multiplied by a factor drawn reproducibly per message id
//!   ([`Scenario::with_alpha_jitter`]): software-stack noise on the control
//!   path, as opposed to the bandwidth knobs above which perturb the data path.
//!
//! Seeded constructors ([`Scenario::seeded_slowdowns`], [`Scenario::seeded_failures`],
//! [`Scenario::with_alpha_jitter`]) draw their perturbations reproducibly from
//! ChaCha8 streams so degradation sweeps are repeatable.

use std::collections::{HashMap, HashSet};

use a2a_topology::{EdgeId, NodeId, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::SimParams;

/// Seeded per-message latency jitter: message `id` draws its α multiplier from
/// a ChaCha8 stream keyed by `(seed, id)`, so the factor is a pure function of
/// the message identity — independent of simulation order or backend.
#[derive(Debug, Clone, Copy)]
struct AlphaJitter {
    seed: u64,
    min_factor: f64,
    max_factor: f64,
}

/// A set of fabric perturbations applied during simulation.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Absolute bandwidth (GB/s) replacing the nominal `link_bandwidth · capacity` of
    /// a directed edge.
    bandwidth_overrides: HashMap<EdgeId, f64>,
    /// Multiplicative slowdown per directed edge, in `(0, 1]`.
    slowdowns: HashMap<EdgeId, f64>,
    /// Directed edges that are down for the whole run.
    failed: HashSet<EdgeId>,
    /// Send-side bandwidth multiplier per straggler node, in `(0, 1]`.
    stragglers: HashMap<NodeId, f64>,
    /// Per-message latency jitter, if enabled.
    alpha_jitter: Option<AlphaJitter>,
}

impl Scenario {
    /// The nominal scenario: no perturbations.
    pub fn nominal() -> Self {
        Self::default()
    }

    /// True if no knob is set (simulating under this scenario is exactly nominal).
    pub fn is_nominal(&self) -> bool {
        self.bandwidth_overrides.is_empty()
            && self.slowdowns.is_empty()
            && self.failed.is_empty()
            && self.stragglers.is_empty()
            && self.alpha_jitter.is_none()
    }

    /// Pins a directed edge to an absolute bandwidth in GB/s (replacing
    /// `link_bandwidth_gbps · capacity`; slowdowns and straggler factors still apply
    /// on top).
    pub fn with_bandwidth_override(mut self, edge: EdgeId, gbps: f64) -> Self {
        assert!(gbps > 0.0, "override bandwidth must be positive");
        self.bandwidth_overrides.insert(edge, gbps);
        self
    }

    /// Multiplies a directed edge's bandwidth by `factor` in `(0, 1]`.
    pub fn with_link_slowdown(mut self, edge: EdgeId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "slowdown factor must be in (0, 1], got {factor}"
        );
        self.slowdowns.insert(edge, factor);
        self
    }

    /// Marks a directed edge as failed for the whole run.
    pub fn with_failed_link(mut self, edge: EdgeId) -> Self {
        self.failed.insert(edge);
        self
    }

    /// Marks `node` as a straggler: every link it sends on runs at `factor` of its
    /// (possibly already perturbed) bandwidth.
    pub fn with_straggler(mut self, node: NodeId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "straggler factor must be in (0, 1], got {factor}"
        );
        self.stragglers.insert(node, factor);
        self
    }

    /// Enables seeded per-message α jitter: message `id` multiplies its launch
    /// latency (per-step sync α in synchronized execution, per-hop α in
    /// dependency-driven execution) by a factor drawn uniformly from
    /// `[min_factor, max_factor]`, keyed by `(seed, id)`. Message ids follow the
    /// schedule's step-major transfer order, so the same message draws the same
    /// factor in every backend.
    ///
    /// # Panics
    /// Panics unless `0 < min_factor <= max_factor`.
    pub fn with_alpha_jitter(mut self, seed: u64, min_factor: f64, max_factor: f64) -> Self {
        assert!(
            0.0 < min_factor && min_factor <= max_factor,
            "alpha jitter factors must satisfy 0 < min <= max, got [{min_factor}, {max_factor}]"
        );
        self.alpha_jitter = Some(AlphaJitter {
            seed,
            min_factor,
            max_factor,
        });
        self
    }

    /// The α multiplier of message `id` under this scenario (1.0 without jitter).
    pub fn alpha_factor(&self, message_id: usize) -> f64 {
        let Some(j) = self.alpha_jitter else {
            return 1.0;
        };
        // SplitMix-style bijective scramble of the id keeps per-message streams
        // decorrelated even for consecutive ids under the same seed.
        let mut z = (message_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = ChaCha8Rng::seed_from_u64(j.seed ^ (z ^ (z >> 31)));
        j.min_factor + (j.max_factor - j.min_factor) * rng.random_f64()
    }

    /// Draws `count` distinct directed edges (seeded) and slows each by a factor drawn
    /// uniformly from `[min_factor, max_factor]`.
    pub fn seeded_slowdowns(
        topo: &Topology,
        seed: u64,
        count: usize,
        min_factor: f64,
        max_factor: f64,
    ) -> Self {
        assert!(
            0.0 < min_factor && min_factor <= max_factor && max_factor <= 1.0,
            "slowdown factors must satisfy 0 < min <= max <= 1"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scenario = Self::nominal();
        for e in pick_edges(topo, &mut rng, count) {
            let f = min_factor + (max_factor - min_factor) * rng.random_f64();
            scenario.slowdowns.insert(e, f);
        }
        scenario
    }

    /// Fails `count` distinct directed edges drawn from a seeded ChaCha8 stream.
    pub fn seeded_failures(topo: &Topology, seed: u64, count: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scenario = Self::nominal();
        scenario.failed.extend(pick_edges(topo, &mut rng, count));
        scenario
    }

    /// True if the directed edge is failed under this scenario.
    pub fn is_failed(&self, edge: EdgeId) -> bool {
        self.failed.contains(&edge)
    }

    /// The failed edges, in unspecified order.
    pub fn failed_links(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.failed.iter().copied()
    }

    /// Effective bandwidth of a directed edge in bytes/second under this scenario, or
    /// `None` if the edge is failed. Infinite-capacity edges stay infinite (they are
    /// never a bottleneck) unless explicitly overridden.
    pub fn effective_bandwidth(
        &self,
        topo: &Topology,
        edge: EdgeId,
        params: &SimParams,
    ) -> Option<f64> {
        if self.is_failed(edge) {
            return None;
        }
        let e = topo.edge(edge);
        let base_gbps = self
            .bandwidth_overrides
            .get(&edge)
            .copied()
            .unwrap_or(params.link_bandwidth_gbps * e.capacity);
        let slow = self.slowdowns.get(&edge).copied().unwrap_or(1.0);
        let straggle = self.stragglers.get(&e.src).copied().unwrap_or(1.0);
        Some(base_gbps * 1e9 * slow * straggle)
    }
}

/// A fabric event occurring at a point in simulated time (see [`ScenarioTimeline`]).
///
/// Events change *capacities*: they never move data. The event engine applies them
/// at event boundaries — a drain in progress is cut at the event time, rates are
/// recomputed, and the run continues (or, for a failure that strands in-flight
/// work, is interrupted with an [`crate::InFlightSnapshot`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimedEvent {
    /// The directed edge goes down (and stays down until a [`TimedEvent::LinkRecover`]).
    LinkFail {
        /// Edge that fails.
        edge: EdgeId,
    },
    /// The directed edge's bandwidth is multiplied by `factor` in `(0, 1]`,
    /// compounding with any slowdown already in effect.
    LinkDegrade {
        /// Edge that degrades.
        edge: EdgeId,
        /// Multiplicative factor in `(0, 1]`.
        factor: f64,
    },
    /// The directed edge returns to its base-scenario state: the failure flag and
    /// every timeline-applied degradation on it are cleared.
    LinkRecover {
        /// Edge that recovers.
        edge: EdgeId,
    },
    /// `node` becomes a straggler: every link it sends on runs at `factor` of its
    /// bandwidth from this time on (compounding with an existing straggler factor).
    StragglerOnset {
        /// Node that starts straggling.
        node: NodeId,
        /// Multiplicative send-side factor in `(0, 1]`.
        factor: f64,
    },
}

/// A [`Scenario`] plus a timed sequence of fabric events: the input of the
/// closed-loop replanning pipeline (see the `replan` module).
///
/// The timeline starts from `base` (any static scenario — overrides, slowdowns,
/// static failures, jitter) and applies each event at its timestamp. Events at
/// `t <= 0` are folded into the base before the run starts, so a
/// [`TimedEvent::LinkFail`] at `t = 0` behaves exactly like a static
/// [`Scenario::with_failed_link`]: the pre-run link resolution rejects the
/// schedule with [`crate::SimError::FailedLink`]. An empty timeline reproduces
/// the static engine bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct ScenarioTimeline {
    base: Scenario,
    /// Events sorted by time (stable: same-time events apply in insertion order).
    events: Vec<(f64, TimedEvent)>,
}

impl ScenarioTimeline {
    /// A timeline over the given static base scenario, with no events yet.
    pub fn new(base: Scenario) -> Self {
        Self {
            base,
            events: Vec::new(),
        }
    }

    /// A timeline over the nominal scenario with no events.
    pub fn nominal() -> Self {
        Self::default()
    }

    /// The static base scenario.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[(f64, TimedEvent)] {
        &self.events
    }

    /// True if no event happens strictly after `t = 0` (the run is static).
    pub fn is_static(&self) -> bool {
        self.events.iter().all(|&(t, _)| t <= 0.0)
    }

    fn push(mut self, time: f64, event: TimedEvent) -> Self {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        // Stable insertion keeps same-time events in insertion order.
        let at = self.events.partition_point(|&(t, _)| t <= time);
        self.events.insert(at, (time, event));
        self
    }

    /// Fails `edge` at `time`.
    pub fn with_link_failure_at(self, time: f64, edge: EdgeId) -> Self {
        self.push(time, TimedEvent::LinkFail { edge })
    }

    /// Multiplies `edge`'s bandwidth by `factor` in `(0, 1]` from `time` on.
    pub fn with_link_degrade_at(self, time: f64, edge: EdgeId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degrade factor must be in (0, 1], got {factor}"
        );
        self.push(time, TimedEvent::LinkDegrade { edge, factor })
    }

    /// Restores `edge` to its base-scenario state at `time`.
    pub fn with_link_recovery_at(self, time: f64, edge: EdgeId) -> Self {
        self.push(time, TimedEvent::LinkRecover { edge })
    }

    /// Makes `node` a straggler (send-side factor in `(0, 1]`) from `time` on.
    pub fn with_straggler_onset_at(self, time: f64, node: NodeId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "straggler factor must be in (0, 1], got {factor}"
        );
        self.push(time, TimedEvent::StragglerOnset { node, factor })
    }

    /// The scenario in effect at time `t`: the base with every event at time
    /// `<= t` applied, in order.
    pub fn scenario_at(&self, t: f64) -> Scenario {
        let mut s = self.base.clone();
        for &(et, ref ev) in &self.events {
            if et > t {
                break;
            }
            apply_event(&mut s, &self.base, ev);
        }
        s
    }

    /// Distinct event times strictly after `t = 0`, ascending — the boundaries at
    /// which the event engine re-reads capacities.
    pub fn dynamic_event_times(&self) -> Vec<f64> {
        let mut times: Vec<f64> = Vec::new();
        for &(t, _) in &self.events {
            if t > 0.0 && times.last() != Some(&t) {
                times.push(t);
            }
        }
        times
    }
}

/// Applies one event on top of `s`. `base` is the untouched starting scenario
/// (recovery restores an edge to its base state).
fn apply_event(s: &mut Scenario, base: &Scenario, ev: &TimedEvent) {
    match *ev {
        TimedEvent::LinkFail { edge } => {
            s.failed.insert(edge);
        }
        TimedEvent::LinkDegrade { edge, factor } => {
            *s.slowdowns.entry(edge).or_insert(1.0) *= factor;
        }
        TimedEvent::LinkRecover { edge } => {
            if base.failed.contains(&edge) {
                s.failed.insert(edge);
            } else {
                s.failed.remove(&edge);
            }
            match base.slowdowns.get(&edge) {
                Some(&f) => {
                    s.slowdowns.insert(edge, f);
                }
                None => {
                    s.slowdowns.remove(&edge);
                }
            }
        }
        TimedEvent::StragglerOnset { node, factor } => {
            *s.stragglers.entry(node).or_insert(1.0) *= factor;
        }
    }
}

/// Picks up to `count` distinct edge ids uniformly without replacement.
fn pick_edges(topo: &Topology, rng: &mut ChaCha8Rng, count: usize) -> Vec<EdgeId> {
    let mut ids: Vec<EdgeId> = (0..topo.num_edges()).collect();
    let count = count.min(ids.len());
    // Partial Fisher–Yates: the first `count` positions end up uniform.
    for i in 0..count {
        let j = i + rng.random_range(0..ids.len() - i);
        ids.swap(i, j);
    }
    ids.truncate(count);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_topology::generators;

    #[test]
    fn nominal_scenario_reproduces_link_bandwidth() {
        let topo = generators::hypercube(3);
        let params = SimParams::default();
        let s = Scenario::nominal();
        assert!(s.is_nominal());
        for e in 0..topo.num_edges() {
            let bw = s.effective_bandwidth(&topo, e, &params).unwrap();
            assert!((bw - params.link_bandwidth_gbps * 1e9).abs() < 1e-6);
        }
    }

    #[test]
    fn knobs_compose_multiplicatively() {
        let mut topo = a2a_topology::Topology::new(2, "pair");
        let e = topo.add_edge(0, 1, 2.0);
        let params = SimParams {
            link_bandwidth_gbps: 10.0,
            ..SimParams::default()
        };
        // Nominal: 10 GB/s * capacity 2 = 20 GB/s.
        let s = Scenario::nominal()
            .with_link_slowdown(e, 0.5)
            .with_straggler(0, 0.5);
        let bw = s.effective_bandwidth(&topo, e, &params).unwrap();
        assert!((bw - 20.0e9 * 0.25).abs() < 1.0);
        // An override replaces the nominal base but still stacks the factors.
        let s = s.with_bandwidth_override(e, 4.0);
        let bw = s.effective_bandwidth(&topo, e, &params).unwrap();
        assert!((bw - 4.0e9 * 0.25).abs() < 1.0);
    }

    #[test]
    fn failed_links_have_no_bandwidth() {
        let topo = generators::ring(4);
        let s = Scenario::nominal().with_failed_link(2);
        assert!(s.is_failed(2));
        assert!(!s.is_failed(1));
        assert!(s
            .effective_bandwidth(&topo, 2, &SimParams::default())
            .is_none());
        assert_eq!(s.failed_links().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn seeded_scenarios_are_reproducible_and_distinct() {
        let topo = generators::torus(&[3, 3]);
        let a = Scenario::seeded_failures(&topo, 7, 3);
        let b = Scenario::seeded_failures(&topo, 7, 3);
        let c = Scenario::seeded_failures(&topo, 8, 3);
        let mut fa: Vec<_> = a.failed_links().collect();
        let mut fb: Vec<_> = b.failed_links().collect();
        fa.sort_unstable();
        fb.sort_unstable();
        assert_eq!(fa, fb, "same seed, same failures");
        assert_eq!(fa.len(), 3);
        let slow = Scenario::seeded_slowdowns(&topo, 11, 4, 0.25, 0.75);
        assert!(!slow.is_nominal());
        for (_, f) in slow.slowdowns.iter() {
            assert!((0.25..=0.75).contains(f));
        }
        // Different seeds should (for this topology/seed pair) pick different sets.
        let fc: Vec<_> = c.failed_links().collect();
        assert!(fa.iter().any(|e| !fc.contains(e)) || fa.len() != fc.len());
    }

    #[test]
    fn alpha_jitter_is_deterministic_per_message_and_bounded() {
        let s = Scenario::nominal().with_alpha_jitter(42, 1.0, 3.0);
        assert!(!s.is_nominal());
        let mut distinct = std::collections::HashSet::new();
        for id in 0..64 {
            let f = s.alpha_factor(id);
            assert!((1.0..=3.0).contains(&f), "factor {f} out of range");
            assert_eq!(f, s.alpha_factor(id), "same id must redraw identically");
            distinct.insert(f.to_bits());
        }
        assert!(distinct.len() > 32, "factors should vary across messages");
        // A different seed reshuffles the draws.
        let other = Scenario::nominal().with_alpha_jitter(43, 1.0, 3.0);
        assert!((0..64).any(|id| s.alpha_factor(id) != other.alpha_factor(id)));
        // Without jitter the factor is exactly 1.
        assert_eq!(Scenario::nominal().alpha_factor(7), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha jitter factors")]
    fn alpha_jitter_rejects_bad_range() {
        let _ = Scenario::nominal().with_alpha_jitter(1, 2.0, 1.0);
    }

    #[test]
    fn count_is_clamped_to_edge_count() {
        let topo = generators::ring(3);
        let s = Scenario::seeded_failures(&topo, 1, 100);
        assert_eq!(s.failed_links().count(), topo.num_edges());
    }

    #[test]
    fn timeline_events_stay_sorted_and_compose() {
        let topo = generators::ring(4);
        let params = SimParams::default();
        let tl = ScenarioTimeline::nominal()
            .with_link_degrade_at(2.0, 0, 0.5)
            .with_link_failure_at(1.0, 1)
            .with_straggler_onset_at(3.0, 2, 0.25)
            .with_link_recovery_at(4.0, 1);
        let times: Vec<f64> = tl.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(tl.dynamic_event_times(), vec![1.0, 2.0, 3.0, 4.0]);
        assert!(!tl.is_static());

        // Before any event: nominal.
        assert!(tl.scenario_at(0.5).is_nominal());
        // After the failure, edge 1 is down.
        assert!(tl.scenario_at(1.5).is_failed(1));
        // After the degrade, edge 0 runs at half rate.
        let bw = tl.scenario_at(2.5).effective_bandwidth(&topo, 0, &params);
        assert!((bw.unwrap() - 0.5 * params.link_bandwidth_gbps * 1e9).abs() < 1.0);
        // The straggler multiplies node 2's send links (edge ids: ring(4) edge
        // from node 2). The recovery restores edge 1.
        let late = tl.scenario_at(10.0);
        assert!(!late.is_failed(1), "recovery clears the failure");
    }

    #[test]
    fn timeline_degrades_compound_and_recovery_restores_base() {
        let topo = generators::ring(3);
        let params = SimParams::default();
        let base = Scenario::nominal().with_link_slowdown(0, 0.5);
        let tl = ScenarioTimeline::new(base)
            .with_link_degrade_at(1.0, 0, 0.5)
            .with_link_degrade_at(2.0, 0, 0.5)
            .with_link_recovery_at(3.0, 0);
        let nominal_bw = params.link_bandwidth_gbps * 1e9;
        let bw = |t: f64| {
            tl.scenario_at(t)
                .effective_bandwidth(&topo, 0, &params)
                .unwrap()
        };
        assert!((bw(0.0) - 0.5 * nominal_bw).abs() < 1.0);
        assert!((bw(1.5) - 0.25 * nominal_bw).abs() < 1.0);
        assert!((bw(2.5) - 0.125 * nominal_bw).abs() < 1.0);
        // Recovery restores the *base* slowdown, not full nominal.
        assert!((bw(3.5) - 0.5 * nominal_bw).abs() < 1.0);
    }

    #[test]
    fn t_zero_events_fold_into_the_base() {
        let tl = ScenarioTimeline::nominal().with_link_failure_at(0.0, 2);
        assert!(tl.is_static());
        assert!(tl.scenario_at(0.0).is_failed(2));
        assert!(tl.dynamic_event_times().is_empty());
    }
}
