//! Fabric descriptions (Table 1 of the paper).

/// The two fabric families of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricKind {
    /// ML-accelerator style: host/GPU forwarding, store-and-forward flow control,
    /// link-based schedules (lowered to MSCCL / oneCCL).
    MlAccelerator,
    /// HPC style: NIC-based forwarding with cut-through flow control and source
    /// routing; forwarding bandwidth can exceed host injection bandwidth, so
    /// path-based schedules apply (lowered to OMPI/UCX route tables).
    HpcNicForwarding,
}

/// Description of the interconnect the schedule will run on.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Which family of fabric this is.
    pub kind: FabricKind,
    /// Link bandwidth in GB/s (25 Gbps links = 3.125 GB/s in the paper's testbeds).
    pub link_bandwidth_gbps: f64,
    /// Host injection bandwidth in GB/s, if it can be a bottleneck (`B_host < d·b`
    /// triggers the Fig. 2 augmentation).
    pub host_injection_gbps: Option<f64>,
    /// Per-commodity candidate-path cap used when deciding whether pMCF is tractable
    /// (Fig. 1 "#(s,d) paths large?").
    pub path_diversity_threshold: usize,
}

impl FabricSpec {
    /// An ML-accelerator fabric (host forwarding) with the given link bandwidth.
    pub fn ml_accelerator(link_bandwidth_gbps: f64) -> Self {
        Self {
            kind: FabricKind::MlAccelerator,
            link_bandwidth_gbps,
            host_injection_gbps: None,
            path_diversity_threshold: 16,
        }
    }

    /// An HPC fabric with NIC forwarding and the given link bandwidth.
    pub fn hpc_nic_forwarding(link_bandwidth_gbps: f64) -> Self {
        Self {
            kind: FabricKind::HpcNicForwarding,
            link_bandwidth_gbps,
            host_injection_gbps: None,
            path_diversity_threshold: 16,
        }
    }

    /// Sets the host injection bandwidth (GB/s).
    pub fn with_host_injection(mut self, gbps: f64) -> Self {
        self.host_injection_gbps = Some(gbps);
        self
    }

    /// True if the host injection bandwidth is lower than the node's aggregate link
    /// bandwidth for a node of the given degree — the condition for applying the
    /// Fig. 2 host-bottleneck augmentation.
    pub fn host_is_bottleneck(&self, degree: usize) -> bool {
        match self.host_injection_gbps {
            Some(host) => host < degree as f64 * self.link_bandwidth_gbps,
            None => false,
        }
    }

    /// Host injection bandwidth expressed in link-capacity units (links worth of
    /// bandwidth), used to build the augmented graph.
    pub fn host_injection_in_link_units(&self) -> Option<f64> {
        self.host_injection_gbps
            .map(|h| h / self.link_bandwidth_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottleneck_detection_matches_paper_examples() {
        // TACC torus: degree 6, 25 Gbps links (3.125 GB/s), 100 Gbps host (12.5 GB/s):
        // 12.5 < 6 * 3.125 = 18.75 -> bottlenecked.
        let fabric = FabricSpec::ml_accelerator(3.125).with_host_injection(12.5);
        assert!(fabric.host_is_bottleneck(6));
        // GPU testbed: degree 3, same numbers: 12.5 > 9.375 -> not bottlenecked.
        assert!(!fabric.host_is_bottleneck(3));
        // No host limit declared -> never a bottleneck.
        assert!(!FabricSpec::hpc_nic_forwarding(3.125).host_is_bottleneck(16));
    }

    #[test]
    fn link_unit_conversion() {
        let fabric = FabricSpec::ml_accelerator(3.125).with_host_injection(12.5);
        assert_eq!(fabric.host_injection_in_link_units(), Some(4.0));
        assert_eq!(
            FabricSpec::ml_accelerator(3.125).host_injection_in_link_units(),
            None
        );
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(
            FabricSpec::ml_accelerator(1.0).kind,
            FabricKind::MlAccelerator
        );
        assert_eq!(
            FabricSpec::hpc_nic_forwarding(1.0).kind,
            FabricKind::HpcNicForwarding
        );
    }
}
