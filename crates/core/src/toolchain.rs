//! The Fig. 1 toolchain: formulation selection, schedule generation, lowering and
//! simulation behind one API.

use a2a_mcf::decomposed::solve_decomposed_mcf_among;
use a2a_mcf::pmcf::solve_path_mcf_among;
use a2a_mcf::tsmcf::{minimum_steps, solve_tsmcf_among, TsMcfSolution};
use a2a_mcf::{extract_widest_paths, CommoditySet, McfResult, PathSchedule, PathSetKind};
use a2a_schedule::{
    lower_path_schedule, to_msccl_xml, to_oneccl_xml, ChunkedSchedule, LashVariant, RouteTable,
};
use a2a_simnet::{simulate_link_schedule, simulate_path_schedule, SimParams, SimReport};
use a2a_topology::transform::HostNicAugmented;
use a2a_topology::{paths, NodeId, Topology};

use crate::fabric::{FabricKind, FabricSpec};

/// A generated all-to-all schedule, tagged with the graph it refers to.
#[derive(Debug, Clone)]
pub enum GeneratedSchedule {
    /// A time-stepped link-based schedule (tsMCF) for store-and-forward fabrics. When
    /// the host is a bottleneck the schedule lives on the Fig. 2 augmented graph and
    /// `hosts` lists the per-rank host vertices.
    TimeStepped {
        /// The tsMCF solution.
        solution: TsMcfSolution,
        /// The graph the solution's edges refer to (the original topology, or the
        /// host-augmented graph when the host is a bottleneck).
        topology: Topology,
        /// Host vertices (one per rank) when the augmented graph is in use.
        hosts: Option<Vec<NodeId>>,
    },
    /// A weighted multi-path schedule (pMCF or MCF-extP) for NIC-forwarding fabrics.
    Routed {
        /// The weighted path schedule.
        schedule: PathSchedule,
        /// Which formulation produced it (`"pMCF"` or `"MCF-extP"`).
        method: &'static str,
    },
}

impl GeneratedSchedule {
    /// Human-readable name of the formulation that produced the schedule.
    pub fn method(&self) -> &'static str {
        match self {
            GeneratedSchedule::TimeStepped { hosts, .. } => {
                if hosts.is_some() {
                    "tsMCF (host-bottleneck model)"
                } else {
                    "tsMCF"
                }
            }
            GeneratedSchedule::Routed { method, .. } => method,
        }
    }
}

/// A lowered, runtime-consumable artefact.
#[derive(Debug, Clone)]
pub enum LoweredArtifact {
    /// MSCCL and oneCCL XML programs plus the chunked IR they were generated from.
    LinkPrograms {
        /// The chunked schedule IR.
        chunked: ChunkedSchedule,
        /// MSCCL-style XML (GPU runtime).
        msccl_xml: String,
        /// oneCCL-style XML (CPU runtime).
        oneccl_xml: String,
    },
    /// Source-routed route tables with deadlock-free virtual channels.
    Routes {
        /// The per-commodity route table.
        table: RouteTable,
    },
}

/// The toolchain entry points.
pub struct Toolchain;

impl Toolchain {
    /// Generates the appropriate all-to-all schedule for `topo` on the given fabric,
    /// following the Fig. 1 decision flow.
    pub fn generate(topo: &Topology, fabric: &FabricSpec) -> McfResult<GeneratedSchedule> {
        match fabric.kind {
            FabricKind::MlAccelerator => Self::generate_time_stepped(topo, fabric),
            FabricKind::HpcNicForwarding => Self::generate_routed(topo, fabric),
        }
    }

    fn generate_time_stepped(topo: &Topology, fabric: &FabricSpec) -> McfResult<GeneratedSchedule> {
        let degree = topo.max_out_degree();
        if fabric.host_is_bottleneck(degree) {
            let host_units = fabric
                .host_injection_in_link_units()
                .expect("bottleneck implies a host bandwidth");
            let augmented = HostNicAugmented::build(topo, host_units);
            let commodities = CommoditySet::among(augmented.hosts.clone());
            let steps = minimum_steps(&augmented.graph, &commodities)?;
            // Prune undelivered junk flow so the stored solution, the simulation
            // and the consistency report all describe the executable flow the
            // lowering produces. (`from_tsmcf` prunes again internally — idempotent,
            // and negligible next to the tsMCF LP solve.)
            let solution =
                solve_tsmcf_among(&augmented.graph, commodities, steps)?.pruned(&augmented.graph);
            Ok(GeneratedSchedule::TimeStepped {
                solution,
                topology: augmented.graph,
                hosts: Some(augmented.hosts),
            })
        } else {
            let commodities = CommoditySet::all_pairs(topo.num_nodes());
            let steps = minimum_steps(topo, &commodities)?;
            let solution = solve_tsmcf_among(topo, commodities, steps)?.pruned(topo);
            Ok(GeneratedSchedule::TimeStepped {
                solution,
                topology: topo.clone(),
                hosts: None,
            })
        }
    }

    fn generate_routed(topo: &Topology, fabric: &FabricSpec) -> McfResult<GeneratedSchedule> {
        let commodities = CommoditySet::all_pairs(topo.num_nodes());
        if Self::path_diversity_is_large(topo, fabric.path_diversity_threshold) {
            // High path diversity (e.g. tori): decomposed link MCF + widest-path
            // extraction.
            let decomposed = solve_decomposed_mcf_among(topo, commodities)?;
            let schedule = extract_widest_paths(topo, &decomposed.solution)?;
            Ok(GeneratedSchedule::Routed {
                schedule,
                method: "MCF-extP",
            })
        } else {
            // Low path diversity (e.g. expanders): path-based MCF over edge-disjoint
            // candidate paths.
            let schedule = solve_path_mcf_among(topo, commodities, PathSetKind::EdgeDisjoint)?;
            Ok(GeneratedSchedule::Routed {
                schedule,
                method: "pMCF",
            })
        }
    }

    /// Probes a sample of commodities and reports whether the number of shortest paths
    /// exceeds the threshold for any of them (the Fig. 1 "#(s,d) paths large?" test).
    pub fn path_diversity_is_large(topo: &Topology, threshold: usize) -> bool {
        let n = topo.num_nodes();
        let mut probes = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                probes += 1;
                if probes > 32 {
                    return false;
                }
                let count = paths::all_shortest_paths(topo, s, d, threshold + 1).len();
                if count > threshold {
                    return true;
                }
            }
        }
        false
    }

    /// Lowers a generated schedule to its runtime artefact.
    pub fn lower(
        topo: &Topology,
        generated: &GeneratedSchedule,
    ) -> Result<LoweredArtifact, String> {
        match generated {
            GeneratedSchedule::TimeStepped {
                solution, topology, ..
            } => {
                let chunked = ChunkedSchedule::from_tsmcf(topology, solution, 256)?;
                let msccl_xml = to_msccl_xml(&chunked, topo.name());
                let oneccl_xml = to_oneccl_xml(&chunked, topo.name());
                Ok(LoweredArtifact::LinkPrograms {
                    chunked,
                    msccl_xml,
                    oneccl_xml,
                })
            }
            GeneratedSchedule::Routed { schedule, .. } => {
                let table = lower_path_schedule(topo, schedule, 16, LashVariant::Sequential);
                let issues = table.validate();
                if !issues.is_empty() {
                    return Err(issues.join("; "));
                }
                Ok(LoweredArtifact::Routes { table })
            }
        }
    }

    /// Simulates a generated schedule with the given shard size (bytes per
    /// destination) and fabric parameters, reporting the paper's throughput metric.
    pub fn simulate(
        topo: &Topology,
        generated: &GeneratedSchedule,
        shard_bytes: u64,
        fabric: &FabricSpec,
    ) -> SimReport {
        let mut params = SimParams {
            link_bandwidth_gbps: fabric.link_bandwidth_gbps,
            ..SimParams::default()
        };
        match generated {
            GeneratedSchedule::TimeStepped {
                solution, topology, ..
            } => simulate_link_schedule(topology, solution, shard_bytes as f64, &params),
            GeneratedSchedule::Routed { schedule, .. } => {
                params.host_injection_gbps = fabric.host_injection_gbps;
                simulate_path_schedule(topo, schedule, shard_bytes as f64, &params)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_topology::generators;

    #[test]
    fn ml_fabric_produces_time_stepped_schedules() {
        let topo = generators::hypercube(2);
        let fabric = FabricSpec::ml_accelerator(3.125);
        let generated = Toolchain::generate(&topo, &fabric).unwrap();
        assert_eq!(generated.method(), "tsMCF");
        match &generated {
            GeneratedSchedule::TimeStepped {
                solution,
                topology,
                hosts,
            } => {
                assert!(hosts.is_none());
                assert_eq!(topology.num_nodes(), 4);
                assert!(solution.check_consistency(topology, 1e-6).is_empty());
            }
            _ => panic!("expected a time-stepped schedule"),
        }
        let lowered = Toolchain::lower(&topo, &generated).unwrap();
        match lowered {
            LoweredArtifact::LinkPrograms {
                chunked,
                msccl_xml,
                oneccl_xml,
            } => {
                assert!(chunked.validate(&topo).is_empty());
                assert!(msccl_xml.contains("<algo"));
                assert!(oneccl_xml.contains("<schedule"));
            }
            _ => panic!("expected link programs"),
        }
        let report = Toolchain::simulate(&topo, &generated, 1 << 22, &fabric);
        assert!(report.throughput_gbps > 0.0);
    }

    #[test]
    fn host_bottleneck_triggers_augmentation() {
        // Degree-4 ring of NICs with a host that can only feed 2 links' worth.
        let topo = generators::complete(4);
        let fabric = FabricSpec::ml_accelerator(3.125).with_host_injection(2.0 * 3.125);
        let generated = Toolchain::generate(&topo, &fabric).unwrap();
        assert_eq!(generated.method(), "tsMCF (host-bottleneck model)");
        match &generated {
            GeneratedSchedule::TimeStepped {
                topology, hosts, ..
            } => {
                assert_eq!(topology.num_nodes(), 12);
                assert_eq!(hosts.as_ref().unwrap().len(), 4);
            }
            _ => panic!("expected a time-stepped schedule"),
        }
    }

    #[test]
    fn hpc_fabric_on_expanders_uses_pmcf() {
        let topo = generators::generalized_kautz(10, 3);
        let fabric = FabricSpec::hpc_nic_forwarding(3.125);
        let generated = Toolchain::generate(&topo, &fabric).unwrap();
        assert_eq!(generated.method(), "pMCF");
        let report = Toolchain::simulate(&topo, &generated, 1 << 24, &fabric);
        assert!(report.throughput_gbps > 0.0);
    }

    #[test]
    fn hpc_fabric_on_tori_uses_extraction() {
        // Tori have multiple shortest paths per pair; with a threshold of 1 the
        // flowchart routes them to MCF-extP (the paper's choice for high-diversity
        // topologies).
        let topo = generators::torus(&[3, 3]);
        let mut fabric = FabricSpec::hpc_nic_forwarding(3.125);
        fabric.path_diversity_threshold = 1;
        let generated = Toolchain::generate(&topo, &fabric).unwrap();
        assert_eq!(generated.method(), "MCF-extP");
        let lowered = Toolchain::lower(&topo, &generated).unwrap();
        match lowered {
            LoweredArtifact::Routes { table } => {
                assert!(table.validate().is_empty());
                assert!(table.num_layers <= 4);
            }
            _ => panic!("expected route tables"),
        }
    }

    #[test]
    fn path_diversity_probe_distinguishes_families() {
        // A torus pair two hops apart already has more than one shortest path.
        assert!(Toolchain::path_diversity_is_large(
            &generators::torus(&[3, 3]),
            1
        ));
        // The expander keeps shortest-path counts small.
        assert!(!Toolchain::path_diversity_is_large(
            &generators::generalized_kautz(10, 3),
            16
        ));
    }
}
