//! # a2a-core
//!
//! The public toolchain API: given a direct-connect topology and a description of the
//! fabric, pick the right all-to-all formulation (the Fig. 1 flowchart), generate the
//! schedule, lower it to the runtime artefact, and simulate its performance.
//!
//! ```
//! use a2a_core::{FabricSpec, Toolchain};
//! use a2a_topology::generators;
//!
//! // A small GPU cluster wired as a 2D hypercube behind a patch panel (ML fabric).
//! let topo = generators::hypercube(2);
//! let fabric = FabricSpec::ml_accelerator(3.125);
//! let generated = Toolchain::generate(&topo, &fabric).unwrap();
//! let report = Toolchain::simulate(&topo, &generated, 1 << 20, &fabric);
//! assert!(report.throughput_gbps > 0.0);
//! ```

pub mod fabric;
pub mod toolchain;

pub use fabric::{FabricKind, FabricSpec};
pub use toolchain::{GeneratedSchedule, LoweredArtifact, Toolchain};
