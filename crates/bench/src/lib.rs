//! Shared support code for the figure-regeneration binaries (`fig3` … `fig10`) and the
//! Criterion micro-benchmarks.
//!
//! Every binary prints a CSV table with the columns
//! `figure,topology,series,x,y` so the paper's plots can be regenerated directly from
//! the output. Binaries accept `--large` to extend the sweep towards the paper's full
//! scale (the defaults are sized for a single-core CI run) — EXPERIMENTS.md records
//! which sweep each reported number came from.

pub mod diff;

use a2a_mcf::tsmcf::TsMcfSolution;
use a2a_mcf::PathSchedule;
use a2a_simnet::{simulate_link_schedule, simulate_path_schedule, SimParams};
use a2a_topology::Topology;

/// Link bandwidth of the paper's testbeds: 25 Gbps = 3.125 GB/s.
pub const LINK_BANDWIDTH_GBPS: f64 = 3.125;

/// Prints the CSV header shared by all figure binaries.
pub fn print_header() {
    println!("figure,topology,series,x,y");
}

/// Prints one CSV data row.
pub fn emit(figure: &str, topology: &str, series: &str, x: f64, y: f64) {
    println!("{figure},{topology},{series},{x},{y}");
}

/// True if `--large` was passed on the command line.
pub fn large_mode() -> bool {
    std::env::args().any(|a| a == "--large")
}

/// The buffer-size sweep (total per-node buffer in bytes) used by Figs. 3–5.
pub fn buffer_sweep(large: bool) -> Vec<f64> {
    let exponents: &[u32] = if large {
        &[13, 15, 17, 19, 21, 23, 25, 27, 28]
    } else {
        &[13, 16, 19, 22, 25, 28]
    };
    exponents.iter().map(|&e| (1u64 << e) as f64).collect()
}

/// Default simulator parameters for the GPU-style testbed.
pub fn gpu_params() -> SimParams {
    SimParams {
        link_bandwidth_gbps: LINK_BANDWIDTH_GBPS,
        ..SimParams::gpu_testbed()
    }
}

/// Default simulator parameters for the TACC-style CPU cluster.
pub fn tacc_params() -> SimParams {
    SimParams {
        link_bandwidth_gbps: LINK_BANDWIDTH_GBPS,
        ..SimParams::tacc_cluster()
    }
}

/// Sweeps a link-based (time-stepped) schedule over buffer sizes, emitting throughput
/// rows in GB/s.
pub fn sweep_link_schedule(
    figure: &str,
    topo: &Topology,
    series: &str,
    schedule: &TsMcfSolution,
    params: &SimParams,
    large: bool,
) {
    for buffer in buffer_sweep(large) {
        let shard =
            a2a_simnet::shard_bytes_for_buffer(buffer, schedule.commodities.num_endpoints());
        let report = simulate_link_schedule(topo, schedule, shard, params);
        emit(figure, topo.name(), series, buffer, report.throughput_gbps);
    }
}

/// Sweeps a path-based schedule over buffer sizes, emitting throughput rows in GB/s.
pub fn sweep_path_schedule(
    figure: &str,
    topo: &Topology,
    series: &str,
    schedule: &PathSchedule,
    params: &SimParams,
    large: bool,
) {
    for buffer in buffer_sweep(large) {
        let shard =
            a2a_simnet::shard_bytes_for_buffer(buffer, schedule.commodities.num_endpoints());
        let report = simulate_path_schedule(topo, schedule, shard, params);
        emit(figure, topo.name(), series, buffer, report.throughput_gbps);
    }
}

/// Emits the analytic throughput upper bound `(N-1)·F·b` as a constant series over the
/// buffer sweep.
pub fn sweep_upper_bound(
    figure: &str,
    topo: &Topology,
    num_endpoints: usize,
    flow_value: f64,
    large: bool,
) {
    let bound = a2a_mcf::throughput_upper_bound(num_endpoints, flow_value, LINK_BANDWIDTH_GBPS);
    for buffer in buffer_sweep(large) {
        emit(figure, topo.name(), "upper-bound", buffer, bound);
    }
}

/// The three 8-node testbed topologies of Figs. 3–4 (left/middle panels).
pub fn small_testbed_topologies() -> Vec<Topology> {
    vec![
        a2a_topology::generators::complete_bipartite(4, 4),
        a2a_topology::generators::hypercube(3),
        a2a_topology::generators::twisted_hypercube(3),
    ]
}

/// The torus used for the right-hand panels: the paper's 3x3x3 at `--large`, a 2x2x3
/// torus otherwise (same family, single-core-friendly size).
pub fn torus_testbed(large: bool) -> (Topology, Vec<usize>) {
    if large {
        (a2a_topology::generators::torus(&[3, 3, 3]), vec![3, 3, 3])
    } else {
        (a2a_topology::generators::torus(&[2, 2, 3]), vec![2, 2, 3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_sweep_is_monotone() {
        for large in [false, true] {
            let sweep = buffer_sweep(large);
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
            assert!(sweep[0] >= 8192.0);
        }
    }

    #[test]
    fn testbed_topologies_match_paper_shapes() {
        let topos = small_testbed_topologies();
        assert_eq!(topos.len(), 3);
        assert!(topos.iter().all(|t| t.num_nodes() == 8));
        let (torus, dims) = torus_testbed(true);
        assert_eq!(torus.num_nodes(), 27);
        assert_eq!(dims, vec![3, 3, 3]);
        let (torus, _) = torus_testbed(false);
        assert_eq!(torus.num_nodes(), 12);
    }

    #[test]
    fn params_use_cerio_link_bandwidth() {
        assert_eq!(gpu_params().link_bandwidth_gbps, 3.125);
        assert_eq!(tacc_params().link_bandwidth_gbps, 3.125);
        assert!(tacc_params().host_injection_gbps.is_some());
    }
}
