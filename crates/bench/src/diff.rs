//! Parsing and diffing of the `BENCH_*.json` files written by `perf_harness`,
//! shared by the harness's `--baseline` gate and the `bench_diff` binary.
//!
//! The harness writes each result as one single-line JSON object, so rows can
//! be scanned with line-oriented field extractors instead of a full JSON
//! parser (no serde in this build environment). `stage_breakdown` is always
//! the *last* field on the line — the one-level `{...}` object scanner relies
//! on that, and rows written before PR 9 simply lack the field.

/// Pulls a string field out of a single-line JSON object written by the
/// harness.
pub fn json_field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Pulls a numeric field out of a single-line JSON object written by the
/// harness.
pub fn json_field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find([',', '}']).unwrap_or(line.len() - start);
    line[start..start + end].trim().parse().ok()
}

/// Pulls a one-level `{...}` object field (the `stage_breakdown` column) out
/// of a single-line JSON object written by the harness. Returns `None` for
/// rows whose breakdown is `null` or absent (pre-PR-9 baselines).
pub fn json_field_obj<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": {{");
    let start = line.find(&pat)? + pat.len() - 1;
    let end = line[start..].find('}')?;
    Some(&line[start..=start + end])
}

/// Parses a flat `{"name": secs, ...}` object (as written by the harness's
/// `stage_breakdown` column) into name → seconds pairs, in file order.
pub fn parse_breakdown(obj: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let inner = obj.trim().trim_start_matches('{').trim_end_matches('}');
    for entry in inner.split(',') {
        let Some((name, secs)) = entry.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if name.is_empty() {
            continue;
        }
        if let Ok(secs) = secs.trim().parse::<f64>() {
            out.push((name.to_string(), secs));
        }
    }
    out
}

/// One result row of a `BENCH_*.json` file, keyed by
/// (workload, topology, config).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    pub workload: String,
    pub topology: String,
    pub config: String,
    pub median_wall_secs: f64,
    /// `None` when the row has no breakdown (pre-PR-9 files, or configs that
    /// skip the instrumented repetition).
    pub stage_breakdown: Option<Vec<(String, f64)>>,
}

impl BenchRow {
    /// The row's identity within a file.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.topology, self.config)
    }
}

/// Extracts every result row from a harness JSON document. Lines that are not
/// result rows (the header, speedup maps) are skipped.
pub fn parse_rows(json: &str) -> Vec<BenchRow> {
    json.lines()
        .filter_map(|line| {
            let (workload, topology, config, median_wall_secs) = (
                json_field_str(line, "workload")?,
                json_field_str(line, "topology")?,
                json_field_str(line, "config")?,
                json_field_f64(line, "median_wall_secs")?,
            );
            Some(BenchRow {
                workload: workload.to_string(),
                topology: topology.to_string(),
                config: config.to_string(),
                median_wall_secs,
                stage_breakdown: json_field_obj(line, "stage_breakdown").map(parse_breakdown),
            })
        })
        .collect()
}

/// How one stage moved between a baseline row and a current row.
#[derive(Clone, Debug, PartialEq)]
pub enum StageChange {
    /// Present in both breakdowns.
    Shared,
    /// Only in the current breakdown (new instrumentation or a new code path).
    New,
    /// Only in the baseline breakdown (stage renamed or code path gone).
    Vanished,
}

/// One stage's contribution to a wall-time delta.
#[derive(Clone, Debug, PartialEq)]
pub struct StageDelta {
    pub stage: String,
    pub base_secs: f64,
    pub cur_secs: f64,
    pub change: StageChange,
}

impl StageDelta {
    /// Signed seconds this stage contributes to the total delta.
    pub fn delta_secs(&self) -> f64 {
        self.cur_secs - self.base_secs
    }
}

/// Attributes a wall-time delta to stages: every stage present in either
/// breakdown, sorted by absolute contribution (largest first), with new and
/// vanished stages called out. Ties (equal |delta|) break by stage name so
/// the output is deterministic.
pub fn attribute_stages(base: &[(String, f64)], cur: &[(String, f64)]) -> Vec<StageDelta> {
    let mut out: Vec<StageDelta> = Vec::new();
    for (stage, cur_secs) in cur {
        let base_entry = base.iter().find(|(name, _)| name == stage);
        out.push(StageDelta {
            stage: stage.clone(),
            base_secs: base_entry.map_or(0.0, |(_, s)| *s),
            cur_secs: *cur_secs,
            change: if base_entry.is_some() {
                StageChange::Shared
            } else {
                StageChange::New
            },
        });
    }
    for (stage, base_secs) in base {
        if cur.iter().any(|(name, _)| name == stage) {
            continue;
        }
        out.push(StageDelta {
            stage: stage.clone(),
            base_secs: *base_secs,
            cur_secs: 0.0,
            change: StageChange::Vanished,
        });
    }
    out.sort_by(|a, b| {
        b.delta_secs()
            .abs()
            .partial_cmp(&a.delta_secs().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.stage.cmp(&b.stage))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str = "    {\"workload\": \"path-mcf\", \"topology\": \"torus-4x4\", \
        \"nodes\": 16, \"endpoints\": 16, \"config\": \"colgen\", \"reps\": 3, \
        \"median_wall_secs\": 0.125000, \"iterations\": 42, \"flow_value\": 1.500000000, \
        \"stage_breakdown\": {\"colgen.master\": 0.080000, \"colgen.pricing\": 0.030000}}";

    const ROW_NO_BREAKDOWN: &str = "    {\"workload\": \"path-mcf\", \
        \"topology\": \"torus-4x4\", \"config\": \"widened\", \
        \"median_wall_secs\": 0.050000, \"flow_value\": 1.500000000}";

    #[test]
    fn parses_rows_with_and_without_breakdowns() {
        let json = format!("{{\n  \"results\": [\n{ROW},\n{ROW_NO_BREAKDOWN}\n  ]\n}}\n");
        let rows = parse_rows(&json);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key(), "path-mcf/torus-4x4/colgen");
        assert_eq!(rows[0].median_wall_secs, 0.125);
        let bd = rows[0].stage_breakdown.as_ref().expect("breakdown parsed");
        assert_eq!(
            bd,
            &vec![
                ("colgen.master".to_string(), 0.08),
                ("colgen.pricing".to_string(), 0.03)
            ]
        );
        assert_eq!(rows[1].key(), "path-mcf/torus-4x4/widened");
        assert!(rows[1].stage_breakdown.is_none());
    }

    #[test]
    fn attribution_sorts_by_contribution_and_flags_new_and_vanished() {
        let base = vec![
            ("lp.phase2".to_string(), 1.0),
            ("lp.lu.factor".to_string(), 0.5),
            ("gone.stage".to_string(), 0.2),
        ];
        let cur = vec![
            ("lp.phase2".to_string(), 3.0),
            ("lp.lu.factor".to_string(), 0.6),
            ("fresh.stage".to_string(), 0.4),
        ];
        let deltas = attribute_stages(&base, &cur);
        assert_eq!(deltas.len(), 4);
        assert_eq!(deltas[0].stage, "lp.phase2");
        assert_eq!(deltas[0].change, StageChange::Shared);
        assert!((deltas[0].delta_secs() - 2.0).abs() < 1e-12);
        assert_eq!(deltas[1].stage, "fresh.stage");
        assert_eq!(deltas[1].change, StageChange::New);
        let vanished = deltas.iter().find(|d| d.stage == "gone.stage").unwrap();
        assert_eq!(vanished.change, StageChange::Vanished);
        assert!((vanished.delta_secs() + 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_object_parses_to_empty() {
        assert!(parse_breakdown("{}").is_empty());
    }
}
