//! Figure 10: topology comparison.
//!
//! Left panel: all-to-all time of degree-4 generalized Kautz graphs vs the Theorem-1
//! lower bound as N grows. Right panel: GenKautz vs 2D tori, Xpander-style expanders
//! and random regular graphs (Jellyfish), normalized by the lower bound.
//!
//! All-to-all time is `1 / F` from the decomposed MCF (the same quantity the paper's
//! simulation reports). The default sweep stops well short of the paper's N = 1000 so
//! it finishes on one core; `--large` extends it.

use a2a_bench::*;
use a2a_mcf::{lower_bound_all_to_all_time, solve_decomposed_mcf};
use a2a_topology::{generators, Topology};

fn alltoall_time(topo: &Topology) -> f64 {
    1.0 / solve_decomposed_mcf(topo)
        .expect("decomposed MCF")
        .solution
        .flow_value
}

fn main() {
    let large = large_mode();
    print_header();
    let degree = 4usize;

    // Left panel: GenKautz vs the lower bound.
    let left_sizes: Vec<usize> = if large {
        vec![20, 50, 100, 200, 400, 700, 1000]
    } else {
        vec![10, 15, 20, 25]
    };
    for &n in &left_sizes {
        let bound = lower_bound_all_to_all_time(n, degree);
        emit("fig10-left", "lower-bound", "Lower Bound", n as f64, bound);
        // Solving the MCF at the largest sizes is what `--large` is for; the bound is
        // closed-form and always emitted.
        if !large || n <= 200 {
            let topo = generators::generalized_kautz(n, degree);
            emit(
                "fig10-left",
                "genkautz-d4",
                "GenKautz",
                n as f64,
                alltoall_time(&topo),
            );
        }
    }

    // Right panel: families normalized by the lower bound.
    let right_sizes: Vec<usize> = if large {
        vec![25, 50, 100, 200, 400]
    } else {
        vec![16, 25]
    };
    for &n in &right_sizes {
        let bound = lower_bound_all_to_all_time(n, degree);
        let genkautz = generators::generalized_kautz(n, degree);
        emit(
            "fig10-right",
            "families-d4",
            "GenKautz",
            n as f64,
            alltoall_time(&genkautz) / bound,
        );
        let torus = generators::torus_2d_near_square(n);
        emit(
            "fig10-right",
            "families-d4",
            "2D-Tori",
            n as f64,
            alltoall_time(&torus) / bound,
        );
        if n % (degree + 1) == 0 {
            let xpander = generators::xpander(degree, n / (degree + 1), 7);
            emit(
                "fig10-right",
                "families-d4",
                "Xpander",
                n as f64,
                alltoall_time(&xpander) / bound,
            );
        }
        let random = generators::random_regular(n, degree, 11);
        emit(
            "fig10-right",
            "families-d4",
            "Random Regular",
            n as f64,
            alltoall_time(&random) / bound,
        );
    }
}
