//! Figure 9: all-to-all time (normalized by the link MCF) on a generalized Kautz graph
//! as random directed links are disabled.
//!
//! The paper evaluates N = 81, degree 8 with up to 60 disabled links; the default
//! sweep uses a smaller instance of the same family (N = 27, degree 4) so that it
//! completes quickly on one core, and `--large` switches to the paper's scale.

use a2a_baselines::{ilp_path_selection, sssp_schedule, IlpPathOptions};
use a2a_bench::*;
use a2a_mcf::analysis::max_link_load_of_paths;
use a2a_mcf::pmcf::{solve_path_mcf, PathSetKind};
use a2a_mcf::solve_decomposed_mcf;
use a2a_topology::{generators, puncture};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let large = large_mode();
    print_header();
    let (n, degree, disabled_counts): (usize, usize, Vec<usize>) = if large {
        (81, 8, vec![0, 10, 20, 30, 40, 50, 60])
    } else {
        (18, 4, vec![0, 4, 8, 12])
    };
    let base = generators::generalized_kautz(n, degree);
    let name = format!("genkautz-{n}-d{degree}");
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    for &disabled in &disabled_counts {
        let topo = if disabled == 0 {
            base.clone()
        } else {
            puncture::remove_random_directed_edges(&base, disabled, &mut rng)
        };
        let optimal = solve_decomposed_mcf(&topo).expect("decomposed MCF");
        let optimal_time = 1.0 / optimal.solution.flow_value;
        emit("fig9", &name, "Link-based MCF", disabled as f64, 1.0);

        if let Ok(p) = solve_path_mcf(&topo, PathSetKind::EdgeDisjoint) {
            emit(
                "fig9",
                &name,
                "pMCF-disjoint",
                disabled as f64,
                max_link_load_of_paths(&topo, &p) / optimal_time,
            );
        }
        let sssp = sssp_schedule(&topo).expect("SSSP");
        emit(
            "fig9",
            &name,
            "SSSP",
            disabled as f64,
            max_link_load_of_paths(&topo, &sssp) / optimal_time,
        );
        if !large {
            if let Ok((ilp, _)) = ilp_path_selection(
                &topo,
                &IlpPathOptions {
                    relative_gap: 0.1,
                    max_nodes: 1_000,
                    ..IlpPathOptions::default()
                },
            ) {
                emit(
                    "fig9",
                    &name,
                    "ILP-disjoint (10% tolerance)",
                    disabled as f64,
                    max_link_load_of_paths(&topo, &ilp) / optimal_time,
                );
            }
        }
    }
}
