//! Reproducible LP-layer perf harness: decomposed-MCF and path-MCF solves on
//! 16/32/64-node torus and fat-tree topologies. Decomposed-MCF compares the
//! cold-start Dantzig configuration (no crash basis, the historical baseline
//! trajectory) against the warm-started devex configuration (structural crash
//! basis + dual simplex on the master — the production path); path-MCF runs
//! both the fixed `Widened` path sets and restricted-master **column
//! generation** (shortest-path seed, incremental add-column resolves) in the
//! same run. All configurations use the LP presolve + scaling +
//! Forrest–Tomlin pipeline where applicable (the colgen master runs the core
//! solver so its row indices stay stable).
//!
//! Emits `BENCH_pr10.json` (median wall-clock over repetitions, simplex
//! iteration and pivot counts, presolve row/column reductions, refactorization
//! counts, colgen round/column/skipped-source counts, the colgen pricing-wall
//! and pricing-thread columns, the decomposed `master_algo` and
//! `master_dual_iterations` columns (which algorithm actually solved the
//! master: the crash-started dual simplex or the primal phases), the
//! decomposed cold/warm and tsmcf dense/colgen speedups, simulator-vs-LP
//! agreement columns, and the replan makespan-loss and solve-time columns) so
//! future PRs have a performance trajectory to compare against, plus a
//! human-readable summary on stderr. A serial-vs-parallel pricing gate on the
//! tier's largest path-MCF case asserts thread count never changes results,
//! and (at ≥ 4 cores) that the parallel sweep cuts the pricing wall at least
//! 2x. The warm-devex decomposed config additionally gates (both tiers) that
//! the master actually ran its dual phase — a refactor that silently knocks
//! the crash basis back to the primal path fails the harness, the same way
//! the colgen skip-rate gates guard ROADMAP item 2 — and, in the full tier,
//! that the torus-8x8 decomposed solve stays under a 12s wall (9.4s measured
//! in BENCH_pr8 on one core; ~62s before the dual-simplex/crash-basis work).
//!
//! **Diagnostics (PR 10).** Each instrumented repetition now also produces a
//! [`a2a_obs::SolveReport`] — the machine-readable solve record (convergence
//! trajectory for the colgen configs, per-refactorization simplex progress
//! for the decomposed master, counters, stage breakdown, histogram
//! summaries) — written as one JSON file per production config under
//! `--reports DIR`. The stall watchdog is armed for those repetitions (and
//! only those: the timed medians stay uninstrumented), so trips land in the
//! reports and in the `watchdog.trips` counter. Wall-time deltas between two
//! harness output files are attributed per stage by the companion
//! `bench_diff` binary.
//!
//! Every case asserts that both path-MCF configs and decomposed-MCF agree on
//! the concurrent flow value, and that colgen terminates with its optimality
//! certificate — the fat-tree divergence recorded in `BENCH_pr1.json` (a fixed
//! path set silently capping `F`) can no longer slip through. The `tsmcf`
//! workload compares the dense time-expanded edge formulation against
//! time-expanded column generation (`tscolgen`, stabilized) and asserts they
//! agree on `Σ_t U_t` wherever both run, with the colgen certificate required
//! everywhere. The `sim-exec` workload runs solver → chunk lowering →
//! event-driven simulation end-to-end and asserts the synchronized engine
//! lands within quantization tolerance of the LP-predicted completion
//! (`sim_vs_lp` ≈ 1) — a sim smoke gate that runs in the quick tier too. The
//! `replan` workload runs the closed-loop digital twin (kill a
//! schedule-carrying link mid-run, snapshot, warm-started residual re-solve,
//! splice, resume) and gates the replanned makespan within
//! [`REPLAN_VS_CLAIRVOYANT_MAX`] of the clairvoyant punctured re-solve — in
//! the quick tier too.
//!
//! **Observability (PR 9).** Medians are measured with `a2a_obs`
//! instrumentation *disabled* (the zero-overhead contract the obs crate
//! documents), then one extra instrumented repetition per production config
//! fills a `stage_breakdown` column — the flat name → seconds totals of the
//! span summary (LP phases, LU factor/solve kernels, colgen master vs
//! pricing, sim stepping, replan detect→snapshot→re-solve→splice). The
//! cold-dantzig decomposed config and the dense tsMCF config skip the
//! instrumented rep: they cost minutes per repetition at the large sizes and
//! their stage split mirrors the instrumented configs'. When the regression
//! gate fails, the report includes the current and baseline stage breakdowns
//! so the offending stage is visible without a rerun. All progress output
//! goes through the `a2a_obs` leveled logger (`--verbose` / `--quiet`).
//!
//! Usage: `perf_harness [--quick] [--out PATH] [--baseline PATH] [--trace PATH]
//!                      [--reports DIR]`
//!   --quick      CI smoke mode: smallest sizes only, one repetition.
//!   --out        Output JSON path (default `BENCH_pr10.json`).
//!   --baseline   Compare against a previous JSON (same schema): exit nonzero if
//!                any matching case regresses more than 1.5x in median wall time.
//!                Baselines predating the `stage_breakdown` column (pre-PR-9
//!                files) still gate on wall time; the regression report then
//!                says "no baseline breakdown" instead of omitting the line.
//!   --reports    Directory for the per-config SolveReport JSON files
//!                (default `solve_reports`).
//!   --trace      Run a traced torus-4x4 decomposed + colgen solve and write the
//!                Chrome trace (chrome://tracing / Perfetto) to PATH; the trace
//!                is validated (parse + span balance) before the harness exits.
//!   --verbose    Debug-level logging.  --quiet  Warnings and errors only.

use std::fmt::Write as _;
use std::time::Instant;

use a2a_bench::diff::{json_field_f64, json_field_obj, json_field_str};
use a2a_lp::Pricing;
use a2a_mcf::decomposed::{solve_decomposed_mcf_with, DecomposedOptions};
use a2a_mcf::pmcf::{
    solve_path_mcf_among, solve_path_mcf_colgen_among, ColGenOptions, PathSetKind,
};
use a2a_mcf::tscolgen::{solve_tsmcf_colgen_among_with, solve_tsmcf_colgen_auto};
use a2a_mcf::tsmcf::{minimum_steps, solve_tsmcf_among_dense, solve_tsmcf_auto};
use a2a_mcf::{CommoditySet, Stabilization};
use a2a_schedule::ChunkedSchedule;
use a2a_simnet::{
    replan_run, simulate_chunked_event, simulate_chunked_timeline, EventSimOptions, ExecutionModel,
    IncumbentPool, ReplanOptions, Scenario, ScenarioTimeline, SimParams, TimelineRun,
};
use a2a_topology::{generators, NodeId, Topology};

/// Median wall-time regression (vs `--baseline`) tolerated before the harness
/// fails. PR 2 shipped this at a tolerant 2x until CI timings proved stable;
/// two PRs of quick-tier history later it is tightened to 1.5x (the absolute
/// [`NOISE_FLOOR_SECS`] slack still absorbs millisecond-scale jitter).
const MAX_REGRESSION: f64 = 1.5;

/// Absolute slack added on top of [`MAX_REGRESSION`]: quick-tier cases finish in
/// tens of milliseconds, where cross-machine wall-clock ratios are dominated by
/// cache state and scheduler noise rather than code. A case only fails the gate
/// once it is both >2x slower *and* more than this many seconds over budget, so
/// an 11 ms case jittering to 25 ms passes while any real blow-up still trips.
const NOISE_FLOOR_SECS: f64 = 0.25;

/// Shortest-path cap for the widened path-MCF candidate sets. Small on purpose:
/// a handful of shortest paths per pair is enough to cover every parallel spine
/// of the fat trees (≤ 4), while distant torus pairs have combinatorially many
/// shortest paths and a large cap would inflate the path LP for no optimality
/// gain (the edge-disjoint core is already optimal there).
const WIDENED_MAX_PER_PAIR: usize = 8;

/// One benchmark case: a topology plus the commodity endpoints to route among.
struct Case {
    name: String,
    topo: Topology,
    hosts: Vec<NodeId>,
}

impl Case {
    fn torus(dims: &[usize]) -> Self {
        let topo = generators::torus(dims);
        let hosts = (0..topo.num_nodes()).collect();
        let name = format!(
            "torus-{}",
            dims.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("x")
        );
        Self { name, topo, hosts }
    }

    fn fat_tree(leaves: usize, spines: usize, hosts_per_leaf: usize) -> Self {
        let ft = generators::fat_tree_two_level(leaves, spines, hosts_per_leaf);
        Self {
            name: format!("fattree-{}h", ft.hosts.len()),
            topo: ft.graph,
            hosts: ft.hosts,
        }
    }
}

/// One measured configuration of one workload on one case.
#[derive(Clone)]
struct Record {
    workload: &'static str,
    topology: String,
    nodes: usize,
    endpoints: usize,
    config: &'static str,
    reps: usize,
    median_wall_secs: f64,
    iterations: Option<usize>,
    pivots: Option<usize>,
    master_iterations: Option<usize>,
    master_dual_iterations: Option<usize>,
    master_algo: Option<&'static str>,
    refactorizations: Option<usize>,
    presolve_rows_removed: Option<usize>,
    presolve_cols_removed: Option<usize>,
    colgen_rounds: Option<usize>,
    colgen_columns: Option<usize>,
    colgen_sources_skipped: Option<usize>,
    colgen_pricing_wall_secs: Option<f64>,
    pricing_threads: Option<usize>,
    sim_completion_secs: Option<f64>,
    lp_predicted_secs: Option<f64>,
    sim_vs_lp: Option<f64>,
    replan_solve_secs: Option<f64>,
    replan_vs_clairvoyant: Option<f64>,
    replan_vs_nominal: Option<f64>,
    flow_value: f64,
    /// Name → seconds span totals from the one instrumented repetition, or
    /// `None` for configs that skip it. Always the *last* field on the JSON
    /// line so the single-line field scanners keep working on the earlier
    /// scalar columns.
    stage_breakdown: Option<Vec<(String, f64)>>,
}

impl Record {
    /// A record with every optional column empty.
    fn bare(
        workload: &'static str,
        case: &Case,
        config: &'static str,
        reps: usize,
        median_wall_secs: f64,
        flow_value: f64,
    ) -> Self {
        Record {
            workload,
            topology: case.name.clone(),
            nodes: case.topo.num_nodes(),
            endpoints: case.hosts.len(),
            config,
            reps,
            median_wall_secs,
            iterations: None,
            pivots: None,
            master_iterations: None,
            master_dual_iterations: None,
            master_algo: None,
            refactorizations: None,
            presolve_rows_removed: None,
            presolve_cols_removed: None,
            colgen_rounds: None,
            colgen_columns: None,
            colgen_sources_skipped: None,
            colgen_pricing_wall_secs: None,
            pricing_threads: None,
            sim_completion_secs: None,
            lp_predicted_secs: None,
            sim_vs_lp: None,
            replan_solve_secs: None,
            replan_vs_clairvoyant: None,
            replan_vs_nominal: None,
            flow_value,
            stage_breakdown: None,
        }
    }
}

/// Runs `f` once with span tracing enabled *and the stall watchdog armed*,
/// returning the result and the trace summary. The timed repetitions above
/// run instrumentation-off so the medians keep measuring the production
/// configuration; this single extra rep pays the tracing cost and feeds both
/// the `stage_breakdown` column and the per-config [`a2a_obs::SolveReport`].
fn traced_run<T>(f: impl FnOnce() -> T) -> (T, a2a_obs::summary::Summary) {
    a2a_obs::reset();
    a2a_obs::watchdog::configure(Some(a2a_obs::WatchdogConfig::default()));
    a2a_obs::enable();
    let out = f();
    a2a_obs::disable();
    a2a_obs::watchdog::configure(None);
    let summary = a2a_obs::summary::summarize(&a2a_obs::flush());
    assert!(
        summary.is_balanced() && summary.dropped_events == 0,
        "instrumented repetition produced a malformed trace:\n{}",
        summary.render()
    );
    (out, summary)
}

/// The flat name → seconds totals of a trace summary (name-sorted): the
/// `stage_breakdown` column.
fn breakdown_of(summary: &a2a_obs::summary::Summary) -> Vec<(String, f64)> {
    summary
        .totals_by_name()
        .into_iter()
        .map(|(name, (_count, secs))| (name, secs))
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn decomposed_config(config: &str) -> DecomposedOptions {
    match config {
        // The crash basis (and with it the master's dual phase) is pinned
        // *off* here: this config is the historical cold baseline the speedup
        // column has tracked since PR 2, and it must keep measuring the
        // primal-phases trajectory.
        "cold-dantzig" => DecomposedOptions {
            pricing: Pricing::Dantzig,
            warm_start_children: false,
            crash_master: false,
            ..DecomposedOptions::default()
        },
        // Production path: structural crash basis on the master, dual simplex
        // auto-engaged from it (pinned explicitly, independent of the
        // library default), warm-started children.
        "warm-devex" => DecomposedOptions {
            pricing: Pricing::Devex,
            warm_start_children: true,
            crash_master: true,
            ..DecomposedOptions::default()
        },
        _ => unreachable!("unknown config {config}"),
    }
}

fn run_decomposed(
    case: &Case,
    config: &'static str,
    reps: usize,
    reports: &mut Vec<a2a_obs::SolveReport>,
) -> Record {
    let opts = decomposed_config(config);
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let commodities = CommoditySet::among(case.hosts.clone());
        let start = Instant::now();
        let solved = solve_decomposed_mcf_with(&case.topo, commodities, &opts)
            .expect("decomposed MCF solve");
        walls.push(start.elapsed().as_secs_f64());
        last = Some(solved);
    }
    let solved = last.expect("at least one repetition");
    if config == "warm-devex" {
        // Both tiers: the production config must actually be solving its
        // master with the crash-started dual simplex, not silently falling
        // back to the primal phases.
        assert!(
            solved.timings.master_dual_iterations > 0,
            "{}: warm-devex master took no dual iterations — the crash basis \
             is no longer engaging the dual simplex",
            case.name
        );
        // The ROADMAP item-2 headline: the crash-started dual simplex holds
        // the 64-endpoint master at ~10.4k all-dual iterations and the full
        // decomposed solve at 9.4s (BENCH_pr8; ~46k devex iterations and
        // ~62s warm / ~753s cold before it). Gated with single-core
        // run-to-run noise allowance (identical builds measured up to
        // ~11.8s under cache pressure).
        if case.name == "torus-8x8" {
            let wall = median(walls.clone());
            assert!(
                wall < 12.0,
                "torus-8x8 warm-devex decomposed took {wall:.1}s (gate 12.0s) — \
                 master degeneracy is back"
            );
        }
    }
    // Per-stage column for the production config only: a cold-dantzig
    // instrumented rep would cost minutes at the 64-endpoint sizes and its
    // stage split mirrors the warm one's.
    let stage_breakdown = (config == "warm-devex").then(|| {
        let (traced, summary) = traced_run(|| {
            let commodities = CommoditySet::among(case.hosts.clone());
            solve_decomposed_mcf_with(&case.topo, commodities, &opts)
                .expect("instrumented decomposed solve")
        });
        let mut report = a2a_mcf::report::decomposed_solve_report(
            "decomposed-mcf",
            &case.name,
            config,
            median(walls.clone()),
            traced.solution.flow_value,
            &traced.timings,
        );
        report.attach_summary(&summary);
        reports.push(report);
        breakdown_of(&summary)
    });
    Record {
        iterations: Some(solved.timings.total_iterations()),
        pivots: Some(solved.timings.total_pivots()),
        master_iterations: Some(solved.timings.master_iterations),
        master_dual_iterations: Some(solved.timings.master_dual_iterations),
        master_algo: Some(if solved.timings.master_dual_iterations > 0 {
            "dual-crash"
        } else {
            "primal"
        }),
        refactorizations: Some(solved.timings.total_refactorizations()),
        presolve_rows_removed: Some(solved.timings.master_presolve_rows_removed),
        presolve_cols_removed: Some(solved.timings.master_presolve_cols_removed),
        stage_breakdown,
        ..Record::bare(
            "decomposed-mcf",
            case,
            config,
            reps,
            median(walls),
            solved.solution.flow_value,
        )
    }
}

fn run_path_mcf(case: &Case, reps: usize) -> Record {
    let mut walls = Vec::with_capacity(reps);
    let mut flow = 0.0;
    for _ in 0..reps {
        let commodities = CommoditySet::among(case.hosts.clone());
        let start = Instant::now();
        let schedule = solve_path_mcf_among(
            &case.topo,
            commodities,
            PathSetKind::Widened {
                max_per_pair: WIDENED_MAX_PER_PAIR,
            },
        )
        .expect("path MCF solve");
        walls.push(start.elapsed().as_secs_f64());
        flow = schedule.flow_value;
    }
    Record::bare("path-mcf", case, "widened", reps, median(walls), flow)
}

fn run_path_mcf_colgen(
    case: &Case,
    reps: usize,
    reports: &mut Vec<a2a_obs::SolveReport>,
) -> Record {
    // Stabilized (Wentges smoothing) with drift-based partial pricing — the
    // production configuration. Smoothing is what calms the dual trajectory
    // enough for the partial-pricing source skip to actually fire, and the
    // default 1e-7 drift tolerance is far below the O(1) per-round L1 dual
    // drift of these masters — 1e-1 is where the skip fires without losing
    // the optimality certificate (the terminating pass re-prices every
    // skipped source). The smoothing weight is deliberately light: at the
    // stabilized() default of 0.5 the lagging duals triple the round count on
    // torus-8x8 (51 rounds / 40.7s vs. 15 / 25.0s unstabilized) and the 1840
    // skips don't pay for it, while 0.1 keeps the skip mechanism firing on
    // every case (650 skipped sources on torus-8x8) at 25 rounds. The skip
    // rate is gated below: a refactor that silently stops skipping fails the
    // harness.
    let opts = ColGenOptions {
        partial_pricing: Some(1e-1),
        stabilization: Stabilization::Smoothing { alpha: 0.1 },
        ..ColGenOptions::default()
    };
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let commodities = CommoditySet::among(case.hosts.clone());
        let start = Instant::now();
        let solved = solve_path_mcf_colgen_among(&case.topo, commodities, &opts)
            .expect("colgen path MCF solve");
        walls.push(start.elapsed().as_secs_f64());
        last = Some(solved);
    }
    let solved = last.expect("at least one repetition");
    assert!(
        solved.stats.proved_optimal,
        "{}: colgen terminated without its optimality certificate",
        case.name
    );
    assert!(
        solved.stats.total_sources_skipped() > 0,
        "{}: stabilized partial pricing skipped no source — the production \
         speedup mechanism (ROADMAP item 2) is not firing",
        case.name
    );
    let (traced, summary) = traced_run(|| {
        let commodities = CommoditySet::among(case.hosts.clone());
        solve_path_mcf_colgen_among(&case.topo, commodities, &opts)
            .expect("instrumented colgen solve")
    });
    let mut report = a2a_mcf::report::colgen_solve_report(
        "path-mcf",
        &case.name,
        "colgen",
        median(walls.clone()),
        traced.schedule.flow_value,
        &traced.stats,
    );
    report.attach_summary(&summary);
    reports.push(report);
    let stage_breakdown = Some(breakdown_of(&summary));
    Record {
        iterations: Some(solved.stats.total_master_iterations()),
        pivots: Some(solved.stats.total_master_pivots()),
        colgen_rounds: Some(solved.stats.num_rounds()),
        colgen_columns: Some(solved.stats.total_columns),
        colgen_sources_skipped: Some(solved.stats.total_sources_skipped()),
        colgen_pricing_wall_secs: Some(solved.stats.total_pricing_wall_secs()),
        pricing_threads: Some(solved.stats.pricing_threads),
        stage_breakdown,
        ..Record::bare(
            "path-mcf",
            case,
            "colgen",
            reps,
            median(walls),
            solved.schedule.flow_value,
        )
    }
}

/// Minimum pricing-wall speedup the parallel sweep must deliver over a forced
/// serial sweep on the largest path-MCF case. Only gated when the machine has
/// at least [`PRICING_GATE_MIN_CORES`] cores — below that the parallel sweep
/// cannot physically win and the gate degrades to an equality-of-results run.
const PRICING_SPEEDUP_MIN: f64 = 2.0;
const PRICING_GATE_MIN_CORES: usize = 4;

/// Serial-vs-parallel pricing-wall comparison on one case. Always asserts the
/// two runs agree on F, rounds, and columns (byte-identical rounds are pinned
/// by the `parallel_pricing_tests` suite); enforces the ≥2x pricing-wall
/// speedup only at ≥ 4 cores.
fn gate_parallel_pricing(case: &Case) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let opts = |threads: Option<usize>| ColGenOptions {
        partial_pricing: Some(1e-1),
        stabilization: Stabilization::Smoothing { alpha: 0.1 },
        pricing_threads: threads,
        ..ColGenOptions::default()
    };
    let serial = solve_path_mcf_colgen_among(
        &case.topo,
        CommoditySet::among(case.hosts.clone()),
        &opts(Some(1)),
    )
    .expect("serial pricing solve");
    let parallel = solve_path_mcf_colgen_among(
        &case.topo,
        CommoditySet::among(case.hosts.clone()),
        &opts(None),
    )
    .expect("parallel pricing solve");
    assert_eq!(
        serial.stats.num_rounds(),
        parallel.stats.num_rounds(),
        "{}: thread count changed the round trajectory",
        case.name
    );
    assert_eq!(
        serial.stats.total_columns, parallel.stats.total_columns,
        "{}: thread count changed the column set",
        case.name
    );
    assert!(
        (serial.schedule.flow_value - parallel.schedule.flow_value).abs()
            <= 1e-9 * (1.0 + serial.schedule.flow_value.abs()),
        "{}: thread count changed F ({} vs {})",
        case.name,
        serial.schedule.flow_value,
        parallel.schedule.flow_value
    );
    let sw = serial.stats.total_pricing_wall_secs();
    let pw = parallel.stats.total_pricing_wall_secs();
    let speedup = sw / pw.max(1e-12);
    a2a_obs::info!(
        "# {}: pricing wall {:.3}s serial vs {:.3}s at {} threads ({:.2}x)",
        case.name,
        sw,
        pw,
        parallel.stats.pricing_threads,
        speedup
    );
    if cores >= PRICING_GATE_MIN_CORES {
        assert!(
            speedup >= PRICING_SPEEDUP_MIN,
            "{}: parallel pricing speedup {speedup:.2}x below the {PRICING_SPEEDUP_MIN}x gate \
             at {cores} cores",
            case.name
        );
    } else {
        a2a_obs::warn!(
            "# {}: pricing speedup gate skipped ({cores} cores < {PRICING_GATE_MIN_CORES})",
            case.name
        );
    }
}

/// Relative tolerance for dense-vs-colgen agreement on the tsMCF objective
/// `Σ_t U_t`.
const TSMCF_REL_TOL: f64 = 1e-5;

/// The tsMCF workload: column generation over delivery-exact time-expanded
/// path columns (stabilized — the recommended configuration for these
/// degenerate masters), against the dense edge formulation where the dense LP
/// is still tractable. Dense-vs-colgen agreement on `Σ_t U_t` and the colgen
/// optimality certificate are asserted; `flow_value` reports the effective
/// concurrent flow `1 / Σ_t U_t` so the column is comparable across workloads.
fn run_tsmcf(
    case: &Case,
    reps: usize,
    include_dense: bool,
    reports: &mut Vec<a2a_obs::SolveReport>,
) -> Vec<Record> {
    let steps = minimum_steps(&case.topo, &CommoditySet::among(case.hosts.clone()))
        .expect("tsMCF step bound");
    // Same light α = 0.1 smoothing as the path-MCF colgen workload (the
    // stabilized() default of 0.5 lags the duals and inflates rounds), with a
    // looser drift tolerance: partial pricing accumulates L1 dual drift over
    // the *time-expanded* arc space (|E| · steps dimensions), so per-round
    // drift here is an order of magnitude above the base-graph pmcf master's
    // and the pmcf tolerance of 1e-1 never fires. Measured while sizing: at 7
    // every ts case skips sources (13 on hypercube-3d … 271 on torus-3x3x3)
    // at unchanged wall time, at 3 the two hypercubes and torus-3x3x3 skip
    // nothing, and at 10+ the staler duals inflate rounds (torus-3x3x3
    // 43 rounds / 3.3s vs 37 / 2.2s). The skip rate is gated below just like
    // the path-MCF rows — PR 6 only gated pmcf.
    let opts = ColGenOptions {
        partial_pricing: Some(7.0),
        stabilization: Stabilization::Smoothing { alpha: 0.1 },
        ..ColGenOptions::default()
    };
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let commodities = CommoditySet::among(case.hosts.clone());
        let start = Instant::now();
        let solved = solve_tsmcf_colgen_among_with(&case.topo, commodities, steps, &opts)
            .expect("tsMCF colgen solve");
        walls.push(start.elapsed().as_secs_f64());
        last = Some(solved);
    }
    let cg = last.expect("at least one repetition");
    assert!(
        cg.stats.proved_optimal,
        "{}: tsmcf colgen terminated without its optimality certificate",
        case.name
    );
    assert!(
        cg.stats.total_sources_skipped() > 0,
        "{}: tsmcf stabilized partial pricing skipped no source — the production \
         speedup mechanism (ROADMAP item 2) is not firing on the time-expanded master",
        case.name
    );
    let (traced, summary) = traced_run(|| {
        let commodities = CommoditySet::among(case.hosts.clone());
        solve_tsmcf_colgen_among_with(&case.topo, commodities, steps, &opts)
            .expect("instrumented tsMCF colgen solve")
    });
    let mut report = a2a_mcf::report::colgen_solve_report(
        "tsmcf",
        &case.name,
        "colgen",
        median(walls.clone()),
        traced.solution.effective_flow_value(),
        &traced.stats,
    );
    report.attach_summary(&summary);
    reports.push(report);
    let stage_breakdown = Some(breakdown_of(&summary));
    let mut records = vec![Record {
        iterations: Some(cg.stats.total_master_iterations()),
        pivots: Some(cg.stats.total_master_pivots()),
        colgen_rounds: Some(cg.stats.num_rounds()),
        colgen_columns: Some(cg.stats.total_columns),
        colgen_sources_skipped: Some(cg.stats.total_sources_skipped()),
        colgen_pricing_wall_secs: Some(cg.stats.total_pricing_wall_secs()),
        pricing_threads: Some(cg.stats.pricing_threads),
        stage_breakdown,
        ..Record::bare(
            "tsmcf",
            case,
            "colgen",
            reps,
            median(walls),
            cg.solution.effective_flow_value(),
        )
    }];
    if include_dense {
        let mut walls = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let commodities = CommoditySet::among(case.hosts.clone());
            let start = Instant::now();
            // Explicitly dense: `solve_tsmcf_among` now auto-dispatches to colgen
            // past the size cutover, and this config measures the dense vertex.
            let solved =
                solve_tsmcf_among_dense(&case.topo, commodities, steps).expect("dense tsMCF solve");
            walls.push(start.elapsed().as_secs_f64());
            last = Some(solved);
        }
        let dense = last.expect("at least one repetition");
        let (du, cu) = (dense.total_utilization(), cg.solution.total_utilization());
        assert!(
            (du - cu).abs() <= TSMCF_REL_TOL * (1.0 + du.abs()),
            "{}: dense tsMCF U = {du} vs colgen U = {cu}",
            case.name
        );
        records.push(Record::bare(
            "tsmcf",
            case,
            "dense",
            reps,
            median(walls),
            dense.effective_flow_value(),
        ));
    }
    records
}

/// Shard size of the end-to-end simulation workload: large enough that bandwidth
/// dominates the per-step sync latency, small enough to stay milliseconds.
const SIM_SHARD_BYTES: f64 = 8.0 * 1024.0 * 1024.0;

/// Chunk granularity of the simulated schedules (fine: the sim-vs-LP agreement gate
/// budgets only for 1/128-shard rounding error).
const SIM_CHUNKS_PER_SHARD: usize = 128;

/// End-to-end solver → chunk lowering → event-driven simulation, both execution
/// models on one solve. The measured wall time covers the *simulation* only (the
/// solve is the other workloads' job); the agreement columns compare simulated
/// completion against the LP-predicted bound. Prediction and lowering both derive
/// from the same *pruned* solution — the flow the simulator actually executes
/// (pruning strips undelivered junk flow; on a degenerate vertex the junk can tie a
/// bottleneck link, making the unpruned bound describe a different schedule).
fn run_sim(case: &Case, reps: usize, reports: &mut Vec<a2a_obs::SolveReport>) -> Vec<Record> {
    let solution = solve_tsmcf_auto(&case.topo).expect("tsMCF solve");
    let pruned = solution.pruned(&case.topo);
    let schedule = ChunkedSchedule::from_tsmcf_exact(&case.topo, &pruned, SIM_CHUNKS_PER_SHARD)
        .expect("chunk lowering");
    let params = SimParams::default();
    let predicted = pruned.predicted_completion_seconds(
        SIM_SHARD_BYTES,
        params.link_bandwidth_gbps,
        params.step_sync_latency_s,
    );
    let mut records = Vec::new();
    for (config, model) in [
        ("event-sync", ExecutionModel::Synchronized),
        ("event-dep", ExecutionModel::DependencyDriven),
    ] {
        let options = EventSimOptions {
            model,
            ..EventSimOptions::default()
        };
        let mut walls = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let start = Instant::now();
            let report =
                simulate_chunked_event(&case.topo, &schedule, SIM_SHARD_BYTES, &params, &options)
                    .expect("nominal simulation");
            walls.push(start.elapsed().as_secs_f64());
            last = Some(report);
        }
        let report = last.expect("at least one repetition");
        let (_, summary) = traced_run(|| {
            simulate_chunked_event(&case.topo, &schedule, SIM_SHARD_BYTES, &params, &options)
                .expect("instrumented simulation")
        });
        let mut solve_report = a2a_obs::SolveReport {
            solver: "simnet".to_string(),
            workload: "sim-exec".to_string(),
            topology: case.name.clone(),
            config: config.to_string(),
            wall_secs: median(walls.clone()),
            objective: report.report.completion_seconds,
            ..a2a_obs::SolveReport::default()
        };
        solve_report.attach_summary(&summary);
        reports.push(solve_report);
        let stage_breakdown = Some(breakdown_of(&summary));
        let ratio = report.report.completion_seconds / predicted;
        if config == "event-sync" {
            // The quick-tier sim smoke gate: the synchronized engine must land within
            // quantization tolerance of the LP bound (same window the cross-backend
            // test suite asserts).
            let (lo, hi) = a2a_simnet::SIM_VS_LP_AGREEMENT_WINDOW;
            assert!(
                (lo..=hi).contains(&ratio),
                "{}: simulated completion {} vs LP bound {predicted} (ratio {ratio:.4})",
                case.name,
                report.report.completion_seconds
            );
        }
        records.push(Record {
            sim_completion_secs: Some(report.report.completion_seconds),
            lp_predicted_secs: Some(predicted),
            sim_vs_lp: Some(ratio),
            stage_breakdown,
            ..Record::bare(
                "sim-exec",
                case,
                config,
                reps,
                median(walls),
                pruned.effective_flow_value(),
            )
        });
    }
    records
}

/// Quick-tier gate on the closed-loop replan quality: the replanned makespan
/// must stay within this factor of the clairvoyant punctured re-solve (a full
/// re-solve on the punctured topology, as if the failure had been known before
/// the run started).
const REPLAN_VS_CLAIRVOYANT_MAX: f64 = 1.10;

/// Shard size of the replan workload (large enough that several steps are in
/// flight when the link dies).
const REPLAN_SHARD_BYTES: f64 = 64.0 * 1024.0 * 1024.0;

/// Chunk granularity of the replanned schedules (coarse on purpose: the
/// residual demands are whole-chunk, and 1/8-shard rounding keeps the residual
/// LP small).
const REPLAN_CHUNKS_PER_SHARD: usize = 8;

/// The failure instant of the replan workload, as a fraction of the nominal
/// makespan (same pin as the end-to-end test suite: late enough that the
/// residual is strictly smaller than the clairvoyant's full all-to-all).
const REPLAN_FAILURE_FRACTION: f64 = 0.7;

/// The closed-loop digital-twin workload: kill the first schedule-carrying
/// link mid-run, snapshot in-flight state, re-solve the residual tsMCF on the
/// punctured topology warm-started from the nominal incumbent columns, splice
/// and resume. Two records per case: `replanned` (measured wall = the whole
/// detect→splice→resume loop; the makespan-loss columns compare against the
/// clairvoyant and nominal makespans, `replan_solve_secs` isolates the
/// residual LP, `master_iterations` is the warm residual's iteration count)
/// and `clairvoyant` (the cold full re-solve on the punctured topology;
/// measured wall = that solve). Gates, in the quick tier too: replanned
/// makespan ≤ [`REPLAN_VS_CLAIRVOYANT_MAX`] of clairvoyant, and the
/// warm-started residual spends fewer master iterations than the cold
/// clairvoyant solve.
fn run_replan(case: &Case, reps: usize, reports: &mut Vec<a2a_obs::SolveReport>) -> Vec<Record> {
    let params = SimParams::default();
    let cg = solve_tsmcf_colgen_auto(&case.topo).expect("nominal tsMCF solve");
    let schedule =
        ChunkedSchedule::from_tsmcf_exact(&case.topo, &cg.solution, REPLAN_CHUNKS_PER_SHARD)
            .expect("nominal schedule quantizes");
    let pool = IncumbentPool {
        columns: cg.columns,
        commodities: cg.solution.commodities.clone(),
        steps: cg.solution.steps,
    };
    let nominal = simulate_chunked_timeline(
        &case.topo,
        &schedule,
        REPLAN_SHARD_BYTES,
        &params,
        &ScenarioTimeline::nominal(),
        ExecutionModel::Synchronized,
    )
    .expect("nominal run");
    let t_nominal = match nominal {
        TimelineRun::Completed(r) => r.report.completion_seconds,
        TimelineRun::Interrupted(_) => unreachable!("no events on the nominal timeline"),
    };
    let tr = &schedule.steps[0].transfers[0];
    let edge = case
        .topo
        .find_edge(tr.from, tr.to)
        .expect("transfer uses a link");
    let timeline = ScenarioTimeline::new(Scenario::nominal())
        .with_link_failure_at(REPLAN_FAILURE_FRACTION * t_nominal, edge);

    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let run = replan_run(
            &case.topo,
            &schedule,
            REPLAN_SHARD_BYTES,
            &params,
            &timeline,
            Some(&pool),
            &ReplanOptions::default(),
        )
        .expect("replan completes");
        walls.push(start.elapsed().as_secs_f64());
        last = Some(run);
    }
    let run = last.expect("at least one repetition");
    let attempt = run
        .attempts
        .first()
        .expect("the failure interrupts the run");
    assert!(
        !attempt.used_fallback,
        "{}: the LP repair path is the one measured here",
        case.name
    );
    let t_replanned = run.completion_seconds();

    // The clairvoyant benchmark: cold full re-solve on the punctured topology,
    // simulated failure-free.
    let punctured = case.topo.without_edges(&attempt.failed_links);
    let mut clair_walls = Vec::with_capacity(reps);
    let mut clair_last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let solved = solve_tsmcf_colgen_auto(&punctured).expect("clairvoyant solve");
        clair_walls.push(start.elapsed().as_secs_f64());
        clair_last = Some(solved);
    }
    let clair = clair_last.expect("at least one repetition");
    let clair_schedule =
        ChunkedSchedule::from_tsmcf_exact(&punctured, &clair.solution, REPLAN_CHUNKS_PER_SHARD)
            .expect("clairvoyant schedule quantizes");
    let t_clair = match simulate_chunked_timeline(
        &punctured,
        &clair_schedule,
        REPLAN_SHARD_BYTES,
        &params,
        &ScenarioTimeline::nominal(),
        ExecutionModel::Synchronized,
    )
    .expect("clairvoyant run")
    {
        TimelineRun::Completed(r) => r.report.completion_seconds,
        TimelineRun::Interrupted(_) => unreachable!("no events on the clairvoyant timeline"),
    };

    let vs_clair = t_replanned / t_clair;
    let vs_nominal = t_replanned / t_nominal;
    assert!(
        vs_clair <= REPLAN_VS_CLAIRVOYANT_MAX,
        "{}: replanned makespan {t_replanned:.6}s is {vs_clair:.4}x the clairvoyant \
         {t_clair:.6}s (> {REPLAN_VS_CLAIRVOYANT_MAX}x)",
        case.name
    );
    let cold_iterations = clair.stats.total_master_iterations();
    assert!(
        attempt.master_iterations < cold_iterations,
        "{}: warm residual ({} master iterations) should beat the cold clairvoyant ({})",
        case.name,
        attempt.master_iterations,
        cold_iterations
    );
    let (_, summary) = traced_run(|| {
        replan_run(
            &case.topo,
            &schedule,
            REPLAN_SHARD_BYTES,
            &params,
            &timeline,
            Some(&pool),
            &ReplanOptions::default(),
        )
        .expect("instrumented replan run")
    });
    let mut solve_report = a2a_obs::SolveReport {
        solver: "replan".to_string(),
        workload: "replan".to_string(),
        topology: case.name.clone(),
        config: "replanned".to_string(),
        wall_secs: median(walls.clone()),
        objective: t_replanned,
        ..a2a_obs::SolveReport::default()
    };
    solve_report.attach_summary(&summary);
    reports.push(solve_report);
    let stage_breakdown = Some(breakdown_of(&summary));
    vec![
        Record {
            master_iterations: Some(attempt.master_iterations),
            sim_completion_secs: Some(t_replanned),
            replan_solve_secs: Some(attempt.solve_wall_secs),
            replan_vs_clairvoyant: Some(vs_clair),
            replan_vs_nominal: Some(vs_nominal),
            stage_breakdown,
            ..Record::bare(
                "replan",
                case,
                "replanned",
                reps,
                median(walls),
                cg.solution.effective_flow_value(),
            )
        },
        Record {
            master_iterations: Some(cold_iterations),
            sim_completion_secs: Some(t_clair),
            ..Record::bare(
                "replan",
                case,
                "clairvoyant",
                reps,
                median(clair_walls),
                clair.solution.effective_flow_value(),
            )
        },
    ]
}

fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

fn json_opt_str(v: Option<&str>) -> String {
    v.map_or_else(|| "null".into(), |x| format!("\"{x}\""))
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), |x| format!("{x:.9}"))
}

/// The `stage_breakdown` column: a flat name → seconds object, or null.
fn json_breakdown(v: Option<&Vec<(String, f64)>>) -> String {
    v.map_or_else(
        || "null".into(),
        |stages| {
            let body = stages
                .iter()
                .map(|(name, secs)| format!("\"{name}\": {secs:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{{body}}}")
        },
    )
}

/// Compares the freshly measured records against a baseline JSON produced by an
/// earlier run of this harness. Returns the list of regressions beyond
/// [`MAX_REGRESSION`]. A baseline that matches *no* measured case at all is
/// itself a failure — otherwise a renamed config or a malformed baseline file
/// would make the gate pass vacuously.
fn check_baseline(baseline_json: &str, records: &[Record]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for line in baseline_json.lines() {
        let (Some(workload), Some(topology), Some(config), Some(base_median)) = (
            json_field_str(line, "workload"),
            json_field_str(line, "topology"),
            json_field_str(line, "config"),
            json_field_f64(line, "median_wall_secs"),
        ) else {
            continue;
        };
        let Some(current) = records
            .iter()
            .find(|r| r.workload == workload && r.topology == topology && r.config == config)
        else {
            continue; // baseline case not measured in this tier — fine
        };
        matched += 1;
        let ratio = current.median_wall_secs / base_median.max(1e-9);
        if ratio > MAX_REGRESSION
            && current.median_wall_secs > base_median * MAX_REGRESSION + NOISE_FLOOR_SECS
        {
            let mut msg = format!(
                "{workload}/{topology}/{config}: {:.3}s vs baseline {:.3}s ({ratio:.2}x > {MAX_REGRESSION}x)",
                current.median_wall_secs, base_median
            );
            // Per-stage context so the offending stage is visible without a
            // rerun: the instrumented rep's span totals from both runs.
            if let Some(stages) = &current.stage_breakdown {
                let cur = stages
                    .iter()
                    .map(|(name, secs)| format!("{name}={secs:.3}s"))
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = write!(msg, "\n    current stages:  {cur}");
            }
            if let Some(base_stages) = json_field_obj(line, "stage_breakdown") {
                let _ = write!(msg, "\n    baseline stages: {base_stages}");
            } else {
                // Pre-PR-9 baselines (BENCH_pr5.json and earlier) have no
                // stage_breakdown column; say so instead of printing nothing.
                let _ = write!(msg, "\n    baseline stages: (no baseline breakdown)");
            }
            failures.push(msg);
        }
    }
    if matched == 0 {
        failures.push(
            "baseline matched no measured case (renamed workloads/configs or malformed file?) — \
             regenerate it with --quick --out"
                .into(),
        );
    }
    failures
}

/// The `--trace` mode: one fully traced torus-4x4 solve through both the
/// decomposed and the colgen pipeline, so the written Chrome trace carries
/// the master/child/pricing/factorization breakdown on one timeline. The
/// trace is written to `path` and then re-validated through the obs parser
/// (JSONL parse + per-thread span balance) — a malformed trace fails the
/// harness here, not in the viewer.
fn run_traced(path: &str) {
    let case = Case::torus(&[4, 4]);
    a2a_obs::reset();
    a2a_obs::enable();
    solve_decomposed_mcf_with(
        &case.topo,
        CommoditySet::among(case.hosts.clone()),
        &decomposed_config("warm-devex"),
    )
    .expect("traced decomposed solve");
    let cg_opts = ColGenOptions {
        partial_pricing: Some(1e-1),
        stabilization: Stabilization::Smoothing { alpha: 0.1 },
        ..ColGenOptions::default()
    };
    solve_path_mcf_colgen_among(
        &case.topo,
        CommoditySet::among(case.hosts.clone()),
        &cg_opts,
    )
    .expect("traced colgen solve");
    a2a_obs::disable();
    let data = a2a_obs::flush();
    let trace = a2a_obs::chrome::chrome_trace_string(&data);
    std::fs::write(path, &trace).unwrap_or_else(|e| panic!("write chrome trace {path}: {e}"));
    let check = a2a_obs::chrome::validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("the written trace failed validation: {e}"));
    let summary = a2a_obs::summary::summarize(&data);
    assert!(
        summary.is_balanced(),
        "traced solve left unbalanced spans:\n{}",
        summary.render()
    );
    for name in [
        "decomposed.master",
        "decomposed.child",
        "colgen.pricing",
        "lp.lu.factor",
    ] {
        assert!(
            summary.count(name) > 0,
            "traced solve recorded no `{name}` spans — the breakdown is incomplete"
        );
    }
    a2a_obs::info!(
        "# trace: wrote {path} ({} events, {} complete spans, max depth {})",
        check.total_events,
        check.complete_spans,
        check.max_depth
    );
    for line in summary.render().lines() {
        a2a_obs::debug!("{line}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if args.iter().any(|a| a == "--verbose") {
        a2a_obs::set_log_level(a2a_obs::LogLevel::Debug);
    } else if args.iter().any(|a| a == "--quiet") {
        a2a_obs::set_log_level(a2a_obs::LogLevel::Warn);
    }
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_pr10.json".into());
    let baseline_path = arg_value("--baseline");
    let trace_path = arg_value("--trace");
    let reports_dir = arg_value("--reports").unwrap_or_else(|| "solve_reports".into());

    let cases: Vec<Case> = if quick {
        vec![Case::torus(&[4, 4]), Case::fat_tree(4, 2, 4)]
    } else {
        vec![
            Case::torus(&[4, 4]),
            Case::torus(&[4, 8]),
            Case::torus(&[8, 8]),
            Case::fat_tree(4, 2, 4),
            Case::fat_tree(8, 4, 4),
            Case::fat_tree(8, 4, 8),
        ]
    };
    let mut records: Vec<Record> = Vec::new();
    let mut reports: Vec<a2a_obs::SolveReport> = Vec::new();
    for case in &cases {
        // The cold-start Dantzig baseline needs tens of minutes at the 64-endpoint
        // sizes (that gap is the point of the comparison), so the largest cases
        // run once while the small ones — including the quick tier, whose medians
        // feed the CI regression gate — take a median of three.
        let reps = if case.hosts.len() >= 64 { 1 } else { 3 };
        a2a_obs::info!(
            "# {} ({} nodes, {} endpoints)",
            case.name,
            case.topo.num_nodes(),
            case.hosts.len()
        );
        for config in ["cold-dantzig", "warm-devex"] {
            let rec = run_decomposed(case, config, reps, &mut reports);
            a2a_obs::info!(
                "  decomposed-mcf {config}: median {:.3}s, {} iterations ({} dual, \
                 master algo {}), {} pivots, {} refactorizations, presolve -{}r/-{}c, \
                 F = {:.6}",
                rec.median_wall_secs,
                rec.iterations.unwrap_or(0),
                rec.master_dual_iterations.unwrap_or(0),
                rec.master_algo.unwrap_or("-"),
                rec.pivots.unwrap_or(0),
                rec.refactorizations.unwrap_or(0),
                rec.presolve_rows_removed.unwrap_or(0),
                rec.presolve_cols_removed.unwrap_or(0),
                rec.flow_value
            );
            records.push(rec);
        }
        let rec = run_path_mcf(case, reps);
        a2a_obs::info!(
            "  path-mcf (widened): median {:.3}s, F = {:.6}",
            rec.median_wall_secs,
            rec.flow_value
        );
        records.push(rec);
        let rec = run_path_mcf_colgen(case, reps, &mut reports);
        a2a_obs::info!(
            "  path-mcf (colgen): median {:.3}s ({:.3}s pricing at {} threads), {} rounds, \
             {} columns, {} master iterations, {} sources skipped, F = {:.6}",
            rec.median_wall_secs,
            rec.colgen_pricing_wall_secs.unwrap_or(0.0),
            rec.pricing_threads.unwrap_or(1),
            rec.colgen_rounds.unwrap_or(0),
            rec.colgen_columns.unwrap_or(0),
            rec.iterations.unwrap_or(0),
            rec.colgen_sources_skipped.unwrap_or(0),
            rec.flow_value
        );
        records.push(rec);
    }

    // Serial-vs-parallel pricing gate on the largest path-MCF case of the
    // tier: the parallel sweep must not change any result, and must cut the
    // pricing wall ≥ 2x when the machine has enough cores to matter.
    let gate_case = if quick {
        Case::torus(&[4, 4])
    } else {
        Case::torus(&[8, 8])
    };
    gate_parallel_pricing(&gate_case);

    // Time-stepped MCF workload: dense edge formulation vs time-expanded column
    // generation. The small store-and-forward cases (fig3-scale, the 8-node
    // testbed size) run dense + colgen in both tiers — the quick tier gates
    // both the certificate and the dense/colgen agreement on Σ_t U_t — while
    // the larger cases (up to the fig4-scale 27-node torus) run colgen only:
    // the dense LP there is exactly the degenerate blow-up colgen replaces.
    // Measured while sizing this workload: dense on hypercube-4d exhausts the
    // 1M-iteration limit after ~385s (and fails numerically on some 12-node
    // random regular instances), where colgen certifies optimality in ~0.3s.
    let hypercube_case = |d: usize| Case {
        name: format!("hypercube-{d}d"),
        topo: generators::hypercube(d),
        hosts: (0..1usize << d).collect(),
    };
    let ts_cases: Vec<(Case, bool)> = if quick {
        vec![(hypercube_case(3), true), (Case::torus(&[3, 3]), true)]
    } else {
        vec![
            (hypercube_case(3), true),
            (Case::torus(&[3, 3]), true),
            (hypercube_case(4), false),
            (Case::torus(&[3, 3, 2]), false),
            (Case::torus(&[3, 3, 3]), false),
        ]
    };
    for (case, include_dense) in &ts_cases {
        let reps = 3;
        a2a_obs::info!("# {} (tsmcf)", case.name);
        for rec in run_tsmcf(case, reps, *include_dense, &mut reports) {
            a2a_obs::info!(
                "  tsmcf {}: median {:.3}s, {} rounds, {} columns, {} master iterations, \
                 {} sources skipped, F_eff = {:.6}",
                rec.config,
                rec.median_wall_secs,
                rec.colgen_rounds.unwrap_or(0),
                rec.colgen_columns.unwrap_or(0),
                rec.iterations.unwrap_or(0),
                rec.colgen_sources_skipped.unwrap_or(0),
                rec.flow_value
            );
            records.push(rec);
        }
    }

    // End-to-end simulation workload: solver → chunk lowering → event engine on the
    // small store-and-forward topologies (both tiers, so the sim-vs-LP agreement
    // gate runs in CI's quick mode too).
    let sim_cases = vec![
        Case {
            name: "hypercube-3d".into(),
            topo: generators::hypercube(3),
            hosts: (0..8).collect(),
        },
        Case {
            name: "torus-3x3".into(),
            topo: generators::torus(&[3, 3]),
            hosts: (0..9).collect(),
        },
    ];
    for case in &sim_cases {
        a2a_obs::info!("# {} (sim-exec)", case.name);
        for rec in run_sim(case, 3, &mut reports) {
            a2a_obs::info!(
                "  sim-exec {}: median {:.6}s wall, simulated {:.6}s vs LP {:.6}s \
                 (ratio {:.4})",
                rec.config,
                rec.median_wall_secs,
                rec.sim_completion_secs.unwrap_or(0.0),
                rec.lp_predicted_secs.unwrap_or(0.0),
                rec.sim_vs_lp.unwrap_or(0.0),
            );
            records.push(rec);
        }
    }

    // Closed-loop replan workload: mid-run failure, snapshot, warm-started
    // residual re-solve, splice, resume — gated against the clairvoyant
    // punctured re-solve in both tiers (the cases are testbed-scale, ~a second
    // each, so the quick tier affords the full loop).
    let replan_cases = vec![
        Case::torus(&[3, 3]),
        Case {
            name: "random-regular-10x3".into(),
            topo: generators::random_regular(10, 3, 7),
            hosts: (0..10).collect(),
        },
    ];
    for case in &replan_cases {
        a2a_obs::info!("# {} (replan)", case.name);
        for rec in run_replan(case, 3, &mut reports) {
            a2a_obs::info!(
                "  replan {}: median {:.3}s wall, makespan {:.6}s, {} master iterations, \
                 solve {:.3}s, vs-clairvoyant {}, vs-nominal {}",
                rec.config,
                rec.median_wall_secs,
                rec.sim_completion_secs.unwrap_or(0.0),
                rec.master_iterations.unwrap_or(0),
                rec.replan_solve_secs.unwrap_or(0.0),
                rec.replan_vs_clairvoyant
                    .map_or_else(|| "-".into(), |r| format!("{r:.4}x")),
                rec.replan_vs_nominal
                    .map_or_else(|| "-".into(), |r| format!("{r:.4}x")),
            );
            records.push(rec);
        }
    }

    // Cold/warm speedups per topology, plus agreement checks on F: the two
    // decomposed configs must agree, and path-MCF (widened) must agree with the
    // decomposed optimum on every case.
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for case in &cases {
        let find = |workload: &str, config: &str| {
            records
                .iter()
                .find(|r| r.workload == workload && r.topology == case.name && r.config == config)
                .expect("every workload ran")
        };
        let cold = find("decomposed-mcf", "cold-dantzig");
        let warm = find("decomposed-mcf", "warm-devex");
        let path = find("path-mcf", "widened");
        let colgen = find("path-mcf", "colgen");
        assert!(
            (cold.flow_value - warm.flow_value).abs() <= 1e-6 * (1.0 + cold.flow_value.abs()),
            "{}: cold and warm configs disagree on F ({} vs {})",
            case.name,
            cold.flow_value,
            warm.flow_value
        );
        assert!(
            (path.flow_value - warm.flow_value).abs() <= 1e-6 * (1.0 + warm.flow_value.abs()),
            "{}: path-MCF and decomposed-MCF disagree on F ({} vs {})",
            case.name,
            path.flow_value,
            warm.flow_value
        );
        assert!(
            (colgen.flow_value - warm.flow_value).abs() <= 1e-6 * (1.0 + warm.flow_value.abs()),
            "{}: colgen path-MCF and decomposed-MCF disagree on F ({} vs {})",
            case.name,
            colgen.flow_value,
            warm.flow_value
        );
        let speedup = cold.median_wall_secs / warm.median_wall_secs.max(1e-12);
        a2a_obs::info!("# {}: warm-devex speedup {:.2}x", case.name, speedup);
        speedups.push((case.name.clone(), speedup));
    }

    // Dense-over-colgen tsMCF speedups for the cases that ran both configs.
    let mut ts_speedups: Vec<(String, f64)> = Vec::new();
    for (case, include_dense) in &ts_cases {
        if !include_dense {
            continue;
        }
        let find = |config: &str| {
            records
                .iter()
                .find(|r| r.workload == "tsmcf" && r.topology == case.name && r.config == config)
                .expect("tsmcf workload ran")
        };
        let speedup = find("dense").median_wall_secs / find("colgen").median_wall_secs.max(1e-12);
        a2a_obs::info!(
            "# {}: tsmcf colgen speedup {:.2}x over dense",
            case.name,
            speedup
        );
        ts_speedups.push((case.name.clone(), speedup));
    }

    // Hand-rolled JSON (no serde in this build environment).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(json, "  \"harness\": \"perf_harness\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"topology\": \"{}\", \"nodes\": {}, \"endpoints\": {}, \
             \"config\": \"{}\", \"reps\": {}, \"median_wall_secs\": {:.6}, \"iterations\": {}, \
             \"pivots\": {}, \"master_iterations\": {}, \"master_dual_iterations\": {}, \
             \"master_algo\": {}, \"refactorizations\": {}, \
             \"presolve_rows_removed\": {}, \"presolve_cols_removed\": {}, \
             \"colgen_rounds\": {}, \"colgen_columns\": {}, \
             \"colgen_sources_skipped\": {}, \"colgen_pricing_wall_secs\": {}, \
             \"pricing_threads\": {}, \"sim_completion_secs\": {}, \
             \"lp_predicted_secs\": {}, \"sim_vs_lp\": {}, \
             \"replan_solve_secs\": {}, \"replan_vs_clairvoyant\": {}, \
             \"replan_vs_nominal\": {}, \"flow_value\": {:.9}, \
             \"stage_breakdown\": {}}}",
            r.workload,
            r.topology,
            r.nodes,
            r.endpoints,
            r.config,
            r.reps,
            r.median_wall_secs,
            json_opt(r.iterations),
            json_opt(r.pivots),
            json_opt(r.master_iterations),
            json_opt(r.master_dual_iterations),
            json_opt_str(r.master_algo),
            json_opt(r.refactorizations),
            json_opt(r.presolve_rows_removed),
            json_opt(r.presolve_cols_removed),
            json_opt(r.colgen_rounds),
            json_opt(r.colgen_columns),
            json_opt(r.colgen_sources_skipped),
            json_opt_f64(r.colgen_pricing_wall_secs),
            json_opt(r.pricing_threads),
            json_opt_f64(r.sim_completion_secs),
            json_opt_f64(r.lp_predicted_secs),
            json_opt_f64(r.sim_vs_lp),
            json_opt_f64(r.replan_solve_secs),
            json_opt_f64(r.replan_vs_clairvoyant),
            json_opt_f64(r.replan_vs_nominal),
            r.flow_value,
            json_breakdown(r.stage_breakdown.as_ref()),
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"decomposed_speedup_warm_devex_over_cold_dantzig\": {\n");
    for (i, (name, s)) in speedups.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {s:.3}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");
    json.push_str("  \"tsmcf_speedup_colgen_over_dense\": {\n");
    for (i, (name, s)) in ts_speedups.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {s:.3}");
        json.push_str(if i + 1 < ts_speedups.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    // One SolveReport JSON per production config. The colgen-based configs
    // must carry their convergence trajectory — a report with an empty one
    // means the stats plumbing broke, which is exactly what this file format
    // exists to catch.
    std::fs::create_dir_all(&reports_dir).expect("create reports dir");
    for report in &reports {
        if report.solver == "colgen" {
            assert!(
                !report.convergence.is_empty(),
                "{}/{}/{}: colgen SolveReport has no convergence trajectory",
                report.workload,
                report.topology,
                report.config
            );
        }
        let file = format!(
            "{reports_dir}/{}-{}-{}.json",
            report.workload, report.topology, report.config
        );
        std::fs::write(&file, report.to_json())
            .unwrap_or_else(|e| panic!("write solve report {file}: {e}"));
    }
    a2a_obs::info!("# wrote {} solve reports to {reports_dir}/", reports.len());

    if let Some(path) = trace_path {
        run_traced(&path);
    }

    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let failures = check_baseline(&baseline, &records);
        if failures.is_empty() {
            a2a_obs::info!("# baseline check vs {path}: ok");
        } else {
            a2a_obs::error!("# baseline check vs {path}: REGRESSIONS");
            for f in &failures {
                a2a_obs::error!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
