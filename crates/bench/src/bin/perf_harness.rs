//! Reproducible LP-layer perf harness: decomposed-MCF and path-MCF solves on
//! 16/32/64-node torus and fat-tree topologies, comparing the cold-start Dantzig
//! configuration against the warm-started devex configuration in the same run.
//!
//! Emits `BENCH_pr1.json` (median wall-clock over repetitions, simplex iteration
//! and pivot counts, and the decomposed cold/warm speedups) so future PRs have a
//! performance trajectory to compare against, plus a human-readable summary on
//! stdout.
//!
//! Usage: `perf_harness [--quick] [--out PATH]`
//!   --quick   CI smoke mode: smallest sizes only, one repetition.
//!   --out     Output JSON path (default `BENCH_pr1.json`).

use std::fmt::Write as _;
use std::time::Instant;

use a2a_lp::Pricing;
use a2a_mcf::decomposed::{solve_decomposed_mcf_with, DecomposedOptions};
use a2a_mcf::pmcf::{solve_path_mcf_among, PathSetKind};
use a2a_mcf::CommoditySet;
use a2a_topology::{generators, NodeId, Topology};

/// One benchmark case: a topology plus the commodity endpoints to route among.
struct Case {
    name: String,
    topo: Topology,
    hosts: Vec<NodeId>,
}

impl Case {
    fn torus(dims: &[usize]) -> Self {
        let topo = generators::torus(dims);
        let hosts = (0..topo.num_nodes()).collect();
        let name = format!(
            "torus-{}",
            dims.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("x")
        );
        Self { name, topo, hosts }
    }

    fn fat_tree(leaves: usize, spines: usize, hosts_per_leaf: usize) -> Self {
        let ft = generators::fat_tree_two_level(leaves, spines, hosts_per_leaf);
        Self {
            name: format!("fattree-{}h", ft.hosts.len()),
            topo: ft.graph,
            hosts: ft.hosts,
        }
    }
}

/// One measured configuration of one workload on one case.
#[derive(Clone)]
struct Record {
    workload: &'static str,
    topology: String,
    nodes: usize,
    endpoints: usize,
    config: &'static str,
    reps: usize,
    median_wall_secs: f64,
    iterations: Option<usize>,
    pivots: Option<usize>,
    master_iterations: Option<usize>,
    flow_value: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn decomposed_config(config: &str) -> DecomposedOptions {
    match config {
        "cold-dantzig" => DecomposedOptions {
            pricing: Pricing::Dantzig,
            warm_start_children: false,
        },
        "warm-devex" => DecomposedOptions {
            pricing: Pricing::Devex,
            warm_start_children: true,
        },
        _ => unreachable!("unknown config {config}"),
    }
}

fn run_decomposed(case: &Case, config: &'static str, reps: usize) -> Record {
    let opts = decomposed_config(config);
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let commodities = CommoditySet::among(case.hosts.clone());
        let start = Instant::now();
        let solved = solve_decomposed_mcf_with(&case.topo, commodities, &opts)
            .expect("decomposed MCF solve");
        walls.push(start.elapsed().as_secs_f64());
        last = Some(solved);
    }
    let solved = last.expect("at least one repetition");
    Record {
        workload: "decomposed-mcf",
        topology: case.name.clone(),
        nodes: case.topo.num_nodes(),
        endpoints: case.hosts.len(),
        config,
        reps,
        median_wall_secs: median(walls),
        iterations: Some(solved.timings.total_iterations()),
        pivots: Some(solved.timings.total_pivots()),
        master_iterations: Some(solved.timings.master_iterations),
        flow_value: solved.solution.flow_value,
    }
}

fn run_path_mcf(case: &Case, reps: usize) -> Record {
    let mut walls = Vec::with_capacity(reps);
    let mut flow = 0.0;
    for _ in 0..reps {
        let commodities = CommoditySet::among(case.hosts.clone());
        let start = Instant::now();
        let schedule = solve_path_mcf_among(&case.topo, commodities, PathSetKind::EdgeDisjoint)
            .expect("path MCF solve");
        walls.push(start.elapsed().as_secs_f64());
        flow = schedule.flow_value;
    }
    Record {
        workload: "path-mcf",
        topology: case.name.clone(),
        nodes: case.topo.num_nodes(),
        endpoints: case.hosts.len(),
        config: "default",
        reps,
        median_wall_secs: median(walls),
        iterations: None,
        pivots: None,
        master_iterations: None,
        flow_value: flow,
    }
}

fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr1.json".into());

    let cases: Vec<Case> = if quick {
        vec![Case::torus(&[4, 4]), Case::fat_tree(4, 2, 4)]
    } else {
        vec![
            Case::torus(&[4, 4]),
            Case::torus(&[4, 8]),
            Case::torus(&[8, 8]),
            Case::fat_tree(4, 2, 4),
            Case::fat_tree(8, 4, 4),
            Case::fat_tree(8, 4, 8),
        ]
    };
    let mut records: Vec<Record> = Vec::new();
    for case in &cases {
        // The cold-start Dantzig baseline needs tens of minutes at the 64-endpoint
        // sizes (that gap is the point of the comparison), so the largest cases
        // run once while the small ones take a median of three.
        let reps = if quick || case.hosts.len() >= 64 {
            1
        } else {
            3
        };
        eprintln!(
            "# {} ({} nodes, {} endpoints)",
            case.name,
            case.topo.num_nodes(),
            case.hosts.len()
        );
        for config in ["cold-dantzig", "warm-devex"] {
            let rec = run_decomposed(case, config, reps);
            eprintln!(
                "  decomposed-mcf {config}: median {:.3}s, {} iterations, {} pivots, F = {:.6}",
                rec.median_wall_secs,
                rec.iterations.unwrap_or(0),
                rec.pivots.unwrap_or(0),
                rec.flow_value
            );
            records.push(rec);
        }
        let rec = run_path_mcf(case, reps);
        eprintln!(
            "  path-mcf (edge-disjoint): median {:.3}s, F = {:.6}",
            rec.median_wall_secs, rec.flow_value
        );
        records.push(rec);
    }

    // Cold/warm speedups per topology, plus agreement check on F.
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for case in &cases {
        let find = |config: &str| {
            records
                .iter()
                .find(|r| {
                    r.workload == "decomposed-mcf" && r.topology == case.name && r.config == config
                })
                .expect("both configs ran")
        };
        let cold = find("cold-dantzig");
        let warm = find("warm-devex");
        assert!(
            (cold.flow_value - warm.flow_value).abs() <= 1e-6 * (1.0 + cold.flow_value.abs()),
            "{}: cold and warm configs disagree on F ({} vs {})",
            case.name,
            cold.flow_value,
            warm.flow_value
        );
        let speedup = cold.median_wall_secs / warm.median_wall_secs.max(1e-12);
        eprintln!("# {}: warm-devex speedup {:.2}x", case.name, speedup);
        speedups.push((case.name.clone(), speedup));
    }

    // Hand-rolled JSON (no serde in this build environment).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 1,");
    let _ = writeln!(json, "  \"harness\": \"perf_harness\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"topology\": \"{}\", \"nodes\": {}, \"endpoints\": {}, \
             \"config\": \"{}\", \"reps\": {}, \"median_wall_secs\": {:.6}, \"iterations\": {}, \
             \"pivots\": {}, \"master_iterations\": {}, \"flow_value\": {:.9}}}",
            r.workload,
            r.topology,
            r.nodes,
            r.endpoints,
            r.config,
            r.reps,
            r.median_wall_secs,
            json_opt(r.iterations),
            json_opt(r.pivots),
            json_opt(r.master_iterations),
            r.flow_value,
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"decomposed_speedup_warm_devex_over_cold_dantzig\": {\n");
    for (i, (name, s)) in speedups.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {s:.3}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
