//! Figure 7: algorithm runtime scaling on generalized Kautz graphs (degree 4).
//!
//! Series: MCF-original (the undecomposed link MCF), MCF-decomp (and its master LP /
//! child LP / widest-path breakdown), the 5% FPTAS, ILP-disjoint, and the SCCL-like /
//! TACCL-like synthesis stand-ins. Each scheme is dropped from the sweep once a single
//! point exceeds its per-point time budget — reproducing the "fails to scale" bands of
//! the paper. The y value is seconds of algorithm runtime.

use std::time::{Duration, Instant};

use a2a_baselines::{
    fptas_max_concurrent_flow, ilp_path_selection, sccl_like_search, taccl_like_heuristic,
    FptasOptions, IlpPathOptions,
};
use a2a_bench::*;
use a2a_mcf::{extract_widest_paths, solve_decomposed_mcf, solve_link_mcf};
use a2a_topology::generators;

fn main() {
    let large = large_mode();
    print_header();
    let sizes: Vec<usize> = if large {
        vec![8, 12, 16, 24, 32, 48, 64, 96, 128]
    } else {
        vec![8, 10, 12, 16]
    };
    let budget = Duration::from_secs(if large { 600 } else { 60 });
    let mut original_alive = true;
    let mut ilp_alive = true;
    let mut fptas_alive = true;
    let mut sccl_alive = true;

    for &n in &sizes {
        let topo = generators::generalized_kautz(n, 4);
        let name = "genkautz-d4";

        // Decomposed MCF (always runs): master + parallel children + widest path.
        let start = Instant::now();
        let decomposed = solve_decomposed_mcf(&topo).expect("decomposed MCF");
        let extract_start = Instant::now();
        let _paths = extract_widest_paths(&topo, &decomposed.solution).expect("extraction");
        let widest_secs = extract_start.elapsed().as_secs_f64();
        let wall = start.elapsed().as_secs_f64();
        emit("fig7", name, "MCF-decomp (wall)", n as f64, wall);
        emit(
            "fig7",
            name,
            "MCF-decomp (parallel estimate)",
            n as f64,
            decomposed.timings.parallel_estimate_secs() + widest_secs,
        );
        emit(
            "fig7",
            name,
            "Master LP",
            n as f64,
            decomposed.timings.master_secs,
        );
        emit(
            "fig7",
            name,
            "Child LP (max)",
            n as f64,
            decomposed.timings.max_child_secs(),
        );
        emit("fig7", name, "Widest path", n as f64, widest_secs);

        if original_alive && (large || n <= 12) {
            let start = Instant::now();
            let _ = solve_link_mcf(&topo).expect("original link MCF");
            let secs = start.elapsed().as_secs_f64();
            emit("fig7", name, "MCF-original", n as f64, secs);
            if start.elapsed() > budget {
                original_alive = false;
                eprintln!("# MCF-original dropped from the sweep after N = {n}");
            }
        }
        if fptas_alive {
            let start = Instant::now();
            let _ = fptas_max_concurrent_flow(&topo, &FptasOptions::default()).expect("FPTAS");
            let secs = start.elapsed().as_secs_f64();
            emit("fig7", name, "5% FPTAS", n as f64, secs);
            if start.elapsed() > budget {
                fptas_alive = false;
                eprintln!("# FPTAS dropped from the sweep after N = {n}");
            }
        }
        if ilp_alive && (large || n <= 12) {
            let start = Instant::now();
            match ilp_path_selection(
                &topo,
                &IlpPathOptions {
                    max_nodes: if large { 50_000 } else { 2_000 },
                    ..IlpPathOptions::default()
                },
            ) {
                Ok((_, stats)) => {
                    emit("fig7", name, "ILP-disjoint", n as f64, stats.elapsed_secs);
                    if !stats.proven_optimal || start.elapsed() > budget {
                        ilp_alive = false;
                        eprintln!("# ILP-disjoint dropped from the sweep after N = {n}");
                    }
                }
                Err(e) => {
                    ilp_alive = false;
                    eprintln!("# ILP-disjoint failed at N = {n}: {e}");
                }
            }
        }
        if sccl_alive {
            let outcome = sccl_like_search(&topo, Duration::from_secs(5)).expect("SCCL-like");
            emit(
                "fig7",
                name,
                "SCCL-like",
                n as f64,
                outcome.elapsed().as_secs_f64(),
            );
            if outcome.schedule().is_none() {
                sccl_alive = false;
                eprintln!("# SCCL-like timed out at N = {n} (runtime shown is the budget)");
            }
        }
        let taccl = taccl_like_heuristic(&topo, Duration::from_secs(30)).expect("TACCL-like");
        emit(
            "fig7",
            name,
            "TACCL-like",
            n as f64,
            taccl.elapsed().as_secs_f64(),
        );
    }
}
