//! Figure 6: distributed 3D-FFT time (stacked compute / all-to-all / unpack phases) on
//! the torus and the edge-punctured torus, for the schedules of Fig. 4.

use a2a_baselines::{
    dimension_ordered_routing, equal_weight_shortest_paths, ilp_path_selection,
    naive_point_to_point, sssp_schedule, IlpPathOptions,
};
use a2a_bench::*;
use a2a_fft::{FftCalibration, SlabFft3d};
use a2a_mcf::{extract_widest_paths, solve_decomposed_mcf, PathSchedule};
use a2a_simnet::simulate_path_schedule;
use a2a_topology::{puncture, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn schedules(topo: &Topology, dims: Option<&[usize]>) -> Vec<(String, PathSchedule)> {
    let mut out = Vec::new();
    if let Ok(e) = equal_weight_shortest_paths(topo) {
        out.push(("EwSP/C".into(), e));
    }
    if let Ok(n) = naive_point_to_point(topo) {
        out.push(("OMPI/C".into(), n));
    }
    if let Some(dims) = dims {
        if let Ok(d) = dimension_ordered_routing(topo, dims) {
            out.push(("DOR/C".into(), d));
        }
    }
    if let Ok(s) = sssp_schedule(topo) {
        out.push(("SSSP/C".into(), s));
    }
    if let Ok(dec) = solve_decomposed_mcf(topo) {
        if let Ok(x) = extract_widest_paths(topo, &dec.solution) {
            out.push(("MCF-extP/C".into(), x));
        }
    }
    if let Ok((ilp, _)) = ilp_path_selection(
        topo,
        &IlpPathOptions {
            relative_gap: 0.1,
            max_nodes: 300,
            ..IlpPathOptions::default()
        },
    ) {
        out.push(("ILP-disjoint/C".into(), ilp));
    }
    out
}

fn run_panel(panel: &str, topo: &Topology, dims: Option<&[usize]>, grids: &[usize]) {
    let params = tacc_params();
    let calibration = FftCalibration::measure();
    for (name, sched) in schedules(topo, dims) {
        for &grid in grids {
            let workload = SlabFft3d::new(grid, topo.num_nodes());
            let report = simulate_path_schedule(topo, &sched, workload.shard_bytes(), &params);
            let breakdown = workload.breakdown(report.completion_seconds, &calibration);
            emit(
                "fig6",
                &format!("{panel}:{}", topo.name()),
                &format!("{name}/compute-pack"),
                grid as f64,
                breakdown.compute_pack_seconds,
            );
            emit(
                "fig6",
                &format!("{panel}:{}", topo.name()),
                &format!("{name}/alltoall"),
                grid as f64,
                breakdown.alltoall_seconds,
            );
            emit(
                "fig6",
                &format!("{panel}:{}", topo.name()),
                &format!("{name}/unpack-compute"),
                grid as f64,
                breakdown.unpack_compute_seconds,
            );
            emit(
                "fig6",
                &format!("{panel}:{}", topo.name()),
                &format!("{name}/total"),
                grid as f64,
                breakdown.total_seconds(),
            );
        }
    }
}

fn main() {
    let large = large_mode();
    print_header();
    let grids: Vec<usize> = if large {
        vec![729, 1296]
    } else {
        vec![243, 729]
    };
    let (torus, dims) = torus_testbed(large);
    run_panel("torus", &torus, Some(&dims), &grids);

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let punctured = puncture::remove_random_links(&torus, 3, &mut rng);
    run_panel("edge-punctured", &punctured, Some(&dims), &grids);
}
