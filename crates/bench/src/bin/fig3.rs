//! Figure 3: throughput of link-based all-to-all schedules vs buffer size.
//!
//! Series per topology: analytic upper bound, tsMCF, the TACCL-like stand-in and the
//! SCCL-like stand-in (omitted when it times out, which is the expected behaviour
//! beyond tiny scales). Default topologies are the three 8-node testbeds; `--large`
//! adds the host-bottlenecked 3x3x3 torus panel (expensive: it solves tsMCF on the
//! 81-vertex augmented graph).

use std::time::Duration;

use a2a_baselines::{sccl_like_search, taccl_like_heuristic};
use a2a_bench::*;
use a2a_mcf::tsmcf::{minimum_steps, solve_tsmcf_among, solve_tsmcf_auto};
use a2a_mcf::CommoditySet;
use a2a_topology::transform::HostNicAugmented;

fn main() {
    let large = large_mode();
    print_header();
    let params = gpu_params();

    for topo in small_testbed_topologies() {
        let tsmcf = solve_tsmcf_auto(&topo).expect("tsMCF on the testbed topologies");
        sweep_upper_bound(
            "fig3",
            &topo,
            topo.num_nodes(),
            tsmcf.effective_flow_value(),
            large,
        );
        sweep_link_schedule("fig3", &topo, "tsMCF/G", &tsmcf, &params, large);

        let taccl = taccl_like_heuristic(&topo, Duration::from_secs(5))
            .expect("TACCL-like always completes")
            .schedule()
            .cloned()
            .expect("TACCL-like always completes");
        sweep_link_schedule("fig3", &topo, "TACCL/G", &taccl, &params, large);

        match sccl_like_search(&topo, Duration::from_secs(if large { 60 } else { 10 })) {
            Ok(outcome) => match outcome.schedule() {
                Some(schedule) => {
                    sweep_link_schedule("fig3", &topo, "SCCL/G", schedule, &params, large)
                }
                None => eprintln!(
                    "# SCCL-like timed out on {} after {:?} (expected beyond tiny scales)",
                    topo.name(),
                    outcome.elapsed()
                ),
            },
            Err(e) => eprintln!("# SCCL-like failed on {}: {e}", topo.name()),
        }
    }

    if large {
        // Right panel: 27-node torus with the host-to-NIC bottleneck model (Fig. 2).
        let (torus, _) = torus_testbed(true);
        let host_links = 4.0; // 100 Gbps host / 25 Gbps links
        let aug = HostNicAugmented::build(&torus, host_links);
        let commodities = CommoditySet::among(aug.hosts.clone());
        let steps = minimum_steps(&aug.graph, &commodities).expect("augmented torus is connected");
        let tsmcf = solve_tsmcf_among(&aug.graph, commodities, steps)
            .expect("bottlenecked tsMCF on the torus");
        sweep_upper_bound(
            "fig3",
            &torus,
            torus.num_nodes(),
            tsmcf.effective_flow_value(),
            large,
        );
        sweep_link_schedule("fig3", &aug.graph, "tsMCF/C", &tsmcf, &params, large);
        let taccl = taccl_like_heuristic(&torus, Duration::from_secs(30))
            .expect("TACCL-like always completes")
            .schedule()
            .cloned()
            .expect("TACCL-like always completes");
        sweep_link_schedule("fig3", &torus, "TACCL/C", &taccl, &params, large);
    } else {
        eprintln!("# fig3: pass --large for the host-bottlenecked 3x3x3 torus panel");
    }
}
