//! Figure 4: throughput of route-based (path) all-to-all schedules vs buffer size.
//!
//! Series: analytic upper bound, MCF-extP, pMCF (edge-disjoint), EwSP, ILP-disjoint,
//! SSSP, the NCCL/OMPI-native stand-in, and DOR on the torus panel.

use a2a_baselines::{
    dimension_ordered_routing, equal_weight_shortest_paths, ilp_path_selection,
    naive_point_to_point, sssp_schedule, IlpPathOptions,
};
use a2a_bench::*;
use a2a_mcf::pmcf::{solve_path_mcf, PathSetKind};
use a2a_mcf::{extract_widest_paths, solve_decomposed_mcf};
use a2a_topology::Topology;

fn path_series(topo: &Topology, large: bool, with_dor: Option<&[usize]>) {
    let params = if with_dor.is_some() {
        tacc_params()
    } else {
        gpu_params()
    };
    let decomposed = solve_decomposed_mcf(topo).expect("decomposed MCF");
    sweep_upper_bound(
        "fig4",
        topo,
        topo.num_nodes(),
        decomposed.solution.flow_value,
        large,
    );

    let extp = extract_widest_paths(topo, &decomposed.solution).expect("widest-path extraction");
    sweep_path_schedule("fig4", topo, "MCF-extP/C", &extp, &params, large);

    if let Ok(pmcf) = solve_path_mcf(topo, PathSetKind::EdgeDisjoint) {
        sweep_path_schedule("fig4", topo, "pMCF-disjoint/C", &pmcf, &params, large);
    }
    let ewsp = equal_weight_shortest_paths(topo).expect("EwSP");
    sweep_path_schedule("fig4", topo, "EwSP/C", &ewsp, &params, large);

    let sssp = sssp_schedule(topo).expect("SSSP");
    sweep_path_schedule("fig4", topo, "SSSP/C", &sssp, &params, large);

    let naive = naive_point_to_point(topo).expect("native all-to-all");
    sweep_path_schedule("fig4", topo, "NCCL-OMPI-native", &naive, &params, large);

    match ilp_path_selection(
        topo,
        &IlpPathOptions {
            max_nodes: 2_000,
            ..IlpPathOptions::default()
        },
    ) {
        Ok((ilp, stats)) => {
            eprintln!(
                "# ILP-disjoint on {}: {} B&B nodes, optimal = {}",
                topo.name(),
                stats.nodes,
                stats.proven_optimal
            );
            sweep_path_schedule("fig4", topo, "ILP-disjoint/C", &ilp, &params, large);
        }
        Err(e) => eprintln!("# ILP-disjoint failed on {}: {e}", topo.name()),
    }

    if let Some(dims) = with_dor {
        match dimension_ordered_routing(topo, dims) {
            Ok(dor) => sweep_path_schedule("fig4", topo, "DOR/C", &dor, &params, large),
            Err(e) => eprintln!("# DOR not applicable on {}: {e}", topo.name()),
        }
    }
}

fn main() {
    let large = large_mode();
    print_header();
    for topo in small_testbed_topologies() {
        path_series(&topo, large, None);
    }
    let (torus, dims) = torus_testbed(large);
    path_series(&torus, large, Some(&dims));
}
