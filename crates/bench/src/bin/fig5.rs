//! Figure 5: route-based throughput on punctured tori (3 random links or 3 random
//! nodes removed), min/avg/max envelope over several instances.

use a2a_baselines::{ilp_path_selection, sssp_schedule, IlpPathOptions};
use a2a_bench::*;
use a2a_mcf::{extract_widest_paths, solve_decomposed_mcf};
use a2a_simnet::{shard_bytes_for_buffer, simulate_path_schedule};
use a2a_topology::{puncture, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn series_for_instance(topo: &Topology, label: &str, buffers: &[f64]) -> Vec<(String, Vec<f64>)> {
    let params = tacc_params();
    let mut out = Vec::new();
    let decomposed = solve_decomposed_mcf(topo).expect("decomposed MCF");
    let extp = extract_widest_paths(topo, &decomposed.solution).expect("extraction");
    let sssp = sssp_schedule(topo).expect("SSSP");
    let mut schedules = vec![
        ("MCF-extP/C".to_string(), extp),
        ("SSSP/C".to_string(), sssp),
    ];
    if let Ok((ilp, _)) = ilp_path_selection(
        topo,
        &IlpPathOptions {
            relative_gap: 0.1,
            max_nodes: 300,
            ..IlpPathOptions::default()
        },
    ) {
        schedules.push(("ILP-disjoint/C".to_string(), ilp));
    }
    for (name, sched) in schedules {
        let ys: Vec<f64> = buffers
            .iter()
            .map(|&b| {
                let shard = shard_bytes_for_buffer(b, topo.num_nodes());
                simulate_path_schedule(topo, &sched, shard, &params).throughput_gbps
            })
            .collect();
        out.push((format!("{label}/{name}"), ys));
    }
    out
}

fn main() {
    let large = large_mode();
    print_header();
    let buffers = buffer_sweep(large);
    let instances = if large { 10 } else { 3 };
    let (base, _) = torus_testbed(large);

    for kind in ["edge-punctured", "node-punctured"] {
        // Aggregate per-series min/avg/max across instances.
        let mut agg: std::collections::BTreeMap<String, Vec<Vec<f64>>> =
            std::collections::BTreeMap::new();
        for seed in 0..instances {
            let mut rng = ChaCha8Rng::seed_from_u64(seed as u64);
            let topo = if kind == "edge-punctured" {
                puncture::remove_random_links(&base, 3, &mut rng)
            } else {
                puncture::remove_random_nodes(&base, 3, &mut rng).0
            };
            for (series, ys) in series_for_instance(&topo, kind, &buffers) {
                agg.entry(series).or_default().push(ys);
            }
        }
        for (series, runs) in agg {
            for (i, &buffer) in buffers.iter().enumerate() {
                let values: Vec<f64> = runs.iter().map(|r| r[i]).collect();
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(0.0, f64::max);
                let avg = values.iter().sum::<f64>() / values.len() as f64;
                emit("fig5", base.name(), &format!("{series}/avg"), buffer, avg);
                emit("fig5", base.name(), &format!("{series}/min"), buffer, min);
                emit("fig5", base.name(), &format!("{series}/max"), buffer, max);
            }
        }
    }
}
