//! Attributes wall-time deltas between two `BENCH_*.json` files to the
//! `stage_breakdown` stages recorded by the instrumented harness repetition.
//!
//! For every (workload, topology, config) row present in both files, prints
//! the wall delta and a per-stage attribution table sorted by absolute
//! contribution — so "torus-8x8 got 2x slower" immediately reads as "it's all
//! in `lp.lu.factor`". Stages that appear in only one file are called out as
//! new/vanished (renamed spans and added code paths are themselves a common
//! source of phantom regressions). Rows without a breakdown on either side —
//! pre-PR-9 baselines, or configs that skip the instrumented rep — still get
//! their wall delta, with a note naming which side lacks the breakdown.
//!
//! Usage: `bench_diff BASELINE.json CURRENT.json`
//!
//! Exit status is 0 whenever both files parse into at least one comparable
//! row — attribution is a diagnostic, not a gate (the harness's `--baseline`
//! flag is the gate).

use a2a_bench::diff::{attribute_stages, parse_rows, BenchRow, StageChange};

/// Wall deltas under this many seconds are reported one-line only: at
/// millisecond scale the per-stage split is measurement noise, not signal.
const ATTRIBUTION_FLOOR_SECS: f64 = 0.01;

fn load(path: &str) -> Vec<BenchRow> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read bench file {path}: {e}"));
    let rows = parse_rows(&text);
    assert!(!rows.is_empty(), "{path} contains no result rows");
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, base_path, cur_path] = &args[..] else {
        eprintln!("usage: bench_diff BASELINE.json CURRENT.json");
        std::process::exit(2);
    };
    let base = load(base_path);
    let cur = load(cur_path);

    let mut compared = 0usize;
    println!("# bench_diff: {base_path} -> {cur_path}");
    for cur_row in &cur {
        let Some(base_row) = base.iter().find(|b| b.key() == cur_row.key()) else {
            println!("{}: only in {cur_path} (no baseline row)", cur_row.key());
            continue;
        };
        compared += 1;
        let delta = cur_row.median_wall_secs - base_row.median_wall_secs;
        let ratio = cur_row.median_wall_secs / base_row.median_wall_secs.max(1e-9);
        println!(
            "{}: {:.3}s -> {:.3}s ({delta:+.3}s, {ratio:.2}x)",
            cur_row.key(),
            base_row.median_wall_secs,
            cur_row.median_wall_secs
        );
        match (&base_row.stage_breakdown, &cur_row.stage_breakdown) {
            (Some(bd_base), Some(bd_cur)) => {
                if delta.abs() < ATTRIBUTION_FLOOR_SECS {
                    continue;
                }
                for d in attribute_stages(bd_base, bd_cur) {
                    let tag = match d.change {
                        StageChange::Shared => "",
                        StageChange::New => "  [new stage]",
                        StageChange::Vanished => "  [vanished stage]",
                    };
                    println!(
                        "    {:<32} {:>9.3}s -> {:>9.3}s  ({:+.3}s){tag}",
                        d.stage,
                        d.base_secs,
                        d.cur_secs,
                        d.delta_secs()
                    );
                }
            }
            (None, None) => println!("    (no stage breakdown on either side)"),
            (None, Some(_)) => println!("    (no baseline breakdown — pre-PR-9 file?)"),
            (Some(_), None) => println!("    (no current breakdown — config skips the traced rep)"),
        }
    }
    for base_row in &base {
        if !cur.iter().any(|c| c.key() == base_row.key()) {
            println!("{}: only in {base_path} (row vanished)", base_row.key());
        }
    }
    assert!(
        compared > 0,
        "no (workload, topology, config) row is shared between {base_path} and {cur_path}"
    );
    println!("# compared {compared} shared rows");
}
