//! Figure 8: all-to-all time of path-based schemes on degree-4 generalized Kautz
//! graphs, normalized by the optimal link-based MCF.
//!
//! The all-to-all time of a scheme is its maximum link load when every commodity ships
//! one shard (equivalently `1 / F`); the optimal link MCF therefore sits at 1.0.

use a2a_baselines::{
    equal_weight_shortest_paths, ilp_path_selection, sssp_schedule, IlpPathOptions, PathCandidates,
};
use a2a_bench::*;
use a2a_mcf::analysis::max_link_load_of_paths;
use a2a_mcf::pmcf::{solve_path_mcf, PathSetKind};
use a2a_mcf::solve_decomposed_mcf;
use a2a_topology::generators;

fn main() {
    let large = large_mode();
    print_header();
    let sizes: Vec<usize> = if large {
        vec![25, 50, 75, 100, 150, 200]
    } else {
        vec![10, 14, 18]
    };
    for &n in &sizes {
        let topo = generators::generalized_kautz(n, 4);
        let name = "genkautz-d4";
        let optimal = solve_decomposed_mcf(&topo).expect("decomposed MCF");
        let optimal_time = 1.0 / optimal.solution.flow_value;
        emit("fig8", name, "Link-based MCF", n as f64, 1.0);

        let record = |series: &str, time: f64| {
            emit("fig8", name, series, n as f64, time / optimal_time);
        };

        if let Ok(p) = solve_path_mcf(&topo, PathSetKind::EdgeDisjoint) {
            record("pMCF-disjoint", max_link_load_of_paths(&topo, &p));
        }
        if let Ok(p) = solve_path_mcf(&topo, PathSetKind::Shortest { max_per_pair: 64 }) {
            record("pMCF-shortest", max_link_load_of_paths(&topo, &p));
        }
        let ewsp = equal_weight_shortest_paths(&topo).expect("EwSP");
        record("EwSP", max_link_load_of_paths(&topo, &ewsp));
        let sssp = sssp_schedule(&topo).expect("SSSP");
        record("SSSP", max_link_load_of_paths(&topo, &sssp));
        if n <= if large { 44 } else { 12 } {
            if let Ok((ilp, _)) = ilp_path_selection(
                &topo,
                &IlpPathOptions {
                    relative_gap: 0.05,
                    max_nodes: 2000,
                    ..IlpPathOptions::default()
                },
            ) {
                record("ILP-disjoint", max_link_load_of_paths(&topo, &ilp));
            }
            if let Ok((ilp, _)) = ilp_path_selection(
                &topo,
                &IlpPathOptions {
                    candidates: PathCandidates::Shortest { max_per_pair: 16 },
                    relative_gap: 0.05,
                    max_nodes: 2000,
                    ..IlpPathOptions::default()
                },
            ) {
                record("ILP-shortest", max_link_load_of_paths(&topo, &ilp));
            }
        }
    }
}
