//! Criterion micro-benchmarks for schedule compilation (§4): chunking, XML emission,
//! route-table lowering and LASH virtual-channel assignment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use a2a_mcf::pmcf::{solve_path_mcf, PathSetKind};
use a2a_mcf::tsmcf::solve_tsmcf_auto;
use a2a_schedule::{
    lower_path_schedule, to_msccl_xml, to_oneccl_xml, ChunkedSchedule, LashVariant,
};
use a2a_topology::generators;

fn bench_lowering(c: &mut Criterion) {
    let topo = generators::hypercube(3);
    let tsmcf = solve_tsmcf_auto(&topo).unwrap();
    let chunked = ChunkedSchedule::from_tsmcf(&topo, &tsmcf, 256).unwrap();
    let pmcf = solve_path_mcf(&topo, PathSetKind::EdgeDisjoint).unwrap();

    let mut group = c.benchmark_group("schedule_compilation");
    group.sample_size(20);
    group.bench_function("chunking_from_tsmcf", |b| {
        b.iter(|| {
            black_box(
                ChunkedSchedule::from_tsmcf(&topo, &tsmcf, 256)
                    .unwrap()
                    .num_steps(),
            )
        })
    });
    group.bench_function("msccl_xml_emit", |b| {
        b.iter(|| black_box(to_msccl_xml(&chunked, "hypercube3").len()))
    });
    group.bench_function("oneccl_xml_emit", |b| {
        b.iter(|| black_box(to_oneccl_xml(&chunked, "hypercube3").len()))
    });
    group.bench_function("route_lowering_with_lash_sequential", |b| {
        b.iter(|| {
            black_box(lower_path_schedule(&topo, &pmcf, 16, LashVariant::Sequential).total_routes())
        })
    });
    group.bench_function("route_lowering_with_lash_basic", |b| {
        b.iter(|| {
            black_box(lower_path_schedule(&topo, &pmcf, 16, LashVariant::Basic).total_routes())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lowering);
criterion_main!(benches);
