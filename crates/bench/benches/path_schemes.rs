//! Criterion micro-benchmarks behind Figs. 8–9: generation cost of the path-based
//! schemes (pMCF, MCF-extP extraction, SSSP, EwSP, FPTAS) on a fixed expander.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use a2a_baselines::{
    equal_weight_shortest_paths, fptas_max_concurrent_flow, sssp_schedule, FptasOptions,
};
use a2a_mcf::pmcf::{solve_path_mcf, PathSetKind};
use a2a_mcf::{extract_widest_paths, solve_decomposed_mcf};
use a2a_topology::generators;

fn bench_path_schemes(c: &mut Criterion) {
    let topo = generators::generalized_kautz(10, 3);
    let decomposed = solve_decomposed_mcf(&topo).unwrap();

    let mut group = c.benchmark_group("fig8_path_schemes");
    group.sample_size(10);
    group.bench_function("pmcf_edge_disjoint", |b| {
        b.iter(|| {
            black_box(
                solve_path_mcf(&topo, PathSetKind::EdgeDisjoint)
                    .unwrap()
                    .flow_value,
            )
        })
    });
    group.bench_function("widest_path_extraction", |b| {
        b.iter(|| {
            black_box(
                extract_widest_paths(&topo, &decomposed.solution)
                    .unwrap()
                    .total_paths(),
            )
        })
    });
    group.bench_function("sssp", |b| {
        b.iter(|| black_box(sssp_schedule(&topo).unwrap().flow_value))
    });
    group.bench_function("ewsp", |b| {
        b.iter(|| black_box(equal_weight_shortest_paths(&topo).unwrap().flow_value))
    });
    group.bench_function("fptas_eps20", |b| {
        b.iter(|| {
            black_box(
                fptas_max_concurrent_flow(
                    &topo,
                    &FptasOptions {
                        epsilon: 0.2,
                        ..FptasOptions::default()
                    },
                )
                .unwrap()
                .solution
                .flow_value,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_path_schemes);
criterion_main!(benches);
