//! Criterion micro-benchmarks behind Fig. 7: schedule-generation cost of the original
//! link MCF vs the decomposed master/child formulation on generalized Kautz graphs.
//! (The full runtime-scaling sweep is the `fig7` binary; these benches track the two
//! formulations' cost on fixed small instances so regressions are visible in CI.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use a2a_mcf::decomposed::solve_master;
use a2a_mcf::{solve_decomposed_mcf, solve_link_mcf, CommoditySet};
use a2a_topology::generators;

fn bench_link_mcf_formulations(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_mcf_scaling");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        let topo = generators::generalized_kautz(n, 3);
        group.bench_with_input(BenchmarkId::new("mcf_original", n), &topo, |b, topo| {
            b.iter(|| black_box(solve_link_mcf(topo).unwrap().flow_value))
        });
        group.bench_with_input(BenchmarkId::new("mcf_decomposed", n), &topo, |b, topo| {
            b.iter(|| black_box(solve_decomposed_mcf(topo).unwrap().solution.flow_value))
        });
        group.bench_with_input(BenchmarkId::new("master_lp_only", n), &topo, |b, topo| {
            let commodities = CommoditySet::all_pairs(topo.num_nodes());
            b.iter(|| black_box(solve_master(topo, &commodities).unwrap().flow_value))
        });
    }
    group.finish();
}

fn bench_tsmcf(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_tsmcf_generation");
    group.sample_size(10);
    for (name, topo) in [
        ("hypercube2", generators::hypercube(2)),
        ("ring4", generators::ring(4)),
    ] {
        group.bench_function(BenchmarkId::new("tsmcf_auto", name), |b| {
            b.iter(|| {
                black_box(
                    a2a_mcf::tsmcf::solve_tsmcf_auto(&topo)
                        .unwrap()
                        .total_utilization(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_link_mcf_formulations, bench_tsmcf);
criterion_main!(benches);
