//! Degraded-fabric walkthrough: solve, lower, and *execute* an all-to-all schedule
//! under contention, heterogeneous links, slowdowns and failures.
//!
//! ```text
//! cargo run --release --example degraded_fabric
//! ```
//!
//! The discrete-event engine makes the LP story falsifiable end-to-end: the tsMCF
//! solution predicts a completion time, the simulator executes the chunked schedule
//! and reports what congestion and degradations actually do to it, and a failed link
//! shows why re-solving on the punctured topology matters.

use a2a_mcf::tsmcf::solve_tsmcf_auto;
use a2a_schedule::ChunkedSchedule;
use a2a_simnet::{simulate_chunked_event, EventSimOptions, ExecutionModel, Scenario, SimParams};
use a2a_topology::generators;

fn main() {
    let topo = generators::torus(&[3, 3]);
    let params = SimParams::gpu_testbed();
    let shard = 8.0 * 1024.0 * 1024.0; // 8 MiB per commodity
    println!(
        "fabric: {} ({} nodes, {} links, {} GB/s each)",
        topo.name(),
        topo.num_nodes(),
        topo.num_edges(),
        params.link_bandwidth_gbps
    );

    // 1. Solve and lower.
    // Lowering and prediction both derive from the pruned solution — the flow the
    // lowered schedule actually executes.
    let solution = solve_tsmcf_auto(&topo).expect("tsMCF solve").pruned(&topo);
    let schedule =
        ChunkedSchedule::from_tsmcf_exact(&topo, &solution, 128).expect("chunk lowering");
    let predicted = solution.predicted_completion_seconds(
        shard,
        params.link_bandwidth_gbps,
        params.step_sync_latency_s,
    );
    println!(
        "schedule: {} steps, {} transfers, {} chunks/shard",
        schedule.num_steps(),
        schedule.total_transfers(),
        schedule.chunks_per_shard
    );
    println!("LP-predicted completion: {:.3} ms", predicted * 1e3);

    // 2. Execute under the nominal fabric, both execution models.
    let run = |label: &str, options: &EventSimOptions| match simulate_chunked_event(
        &topo, &schedule, shard, &params, options,
    ) {
        Ok(r) => println!(
            "  {label:<28} {:8.3} ms  ({:.2} GB/s, peak link util {:.0}%)",
            r.report.completion_seconds * 1e3,
            r.report.throughput_gbps,
            r.peak_link_utilization() * 100.0
        ),
        Err(e) => println!("  {label:<28} FAILS: {e}"),
    };
    println!("nominal fabric:");
    run("synchronized (barrier)", &EventSimOptions::default());
    run(
        "dependency-driven (async)",
        &EventSimOptions {
            model: ExecutionModel::DependencyDriven,
            ..EventSimOptions::default()
        },
    );

    // 3. Degradations: a heterogeneous slow link, then a straggler node.
    let slow_link = 0; // first directed link of the torus
    println!("one link at quarter speed:");
    run(
        "synchronized (barrier)",
        &EventSimOptions {
            scenario: Scenario::nominal().with_link_slowdown(slow_link, 0.25),
            ..EventSimOptions::default()
        },
    );
    println!("node 4 straggling at 30%:");
    run(
        "synchronized (barrier)",
        &EventSimOptions {
            scenario: Scenario::nominal().with_straggler(4, 0.3),
            ..EventSimOptions::default()
        },
    );

    // 4. A failed link breaks the stale schedule...
    let failed = Scenario::nominal().with_failed_link(slow_link);
    println!("failed link, stale schedule:");
    run(
        "synchronized (barrier)",
        &EventSimOptions {
            scenario: failed.clone(),
            ..EventSimOptions::default()
        },
    );

    // ...so re-solve on the punctured topology and execute the rerouted schedule
    // under the same failure.
    let punctured = topo.without_edges(&[slow_link]);
    let rerouted_sol = solve_tsmcf_auto(&punctured)
        .expect("re-solve on punctured fabric")
        .pruned(&punctured);
    let rerouted =
        ChunkedSchedule::from_tsmcf_exact(&punctured, &rerouted_sol, 128).expect("relowering");
    println!("failed link, rerouted schedule:");
    match simulate_chunked_event(
        &topo,
        &rerouted,
        shard,
        &params,
        &EventSimOptions {
            scenario: failed,
            ..EventSimOptions::default()
        },
    ) {
        Ok(r) => println!(
            "  {:<28} {:8.3} ms  ({:.2} GB/s)",
            "synchronized (barrier)",
            r.report.completion_seconds * 1e3,
            r.report.throughput_gbps
        ),
        Err(e) => println!("  rerouted schedule FAILS: {e}"),
    }
}
