//! Quickstart: generate, lower and simulate an all-to-all schedule for a small
//! direct-connect GPU cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use a2a_core::{FabricSpec, GeneratedSchedule, LoweredArtifact, Toolchain};
use a2a_topology::generators;

fn main() {
    // 1. Describe the fabric: four accelerators wired as a 2D hypercube (a 4-cycle)
    //    through an optical patch panel, 25 Gbps links, host-based forwarding.
    let topo = generators::hypercube(2);
    let fabric = FabricSpec::ml_accelerator(3.125);
    println!(
        "topology: {} ({} nodes, {} directed links)",
        topo.name(),
        topo.num_nodes(),
        topo.num_edges()
    );

    // 2. Generate the schedule. The toolchain picks the right formulation (here:
    //    time-stepped MCF, because the fabric forwards through the hosts).
    let generated = Toolchain::generate(&topo, &fabric).expect("schedule generation");
    println!("formulation: {}", generated.method());
    if let GeneratedSchedule::TimeStepped { solution, .. } = &generated {
        println!(
            "steps: {}, total bottleneck utilization: {:.3} shards",
            solution.steps,
            solution.total_utilization()
        );
    }

    // 3. Lower it to the runtime artefacts (MSCCL XML for GPUs, oneCCL XML for CPUs).
    let lowered = Toolchain::lower(&topo, &generated).expect("lowering");
    if let LoweredArtifact::LinkPrograms {
        chunked, msccl_xml, ..
    } = &lowered
    {
        println!(
            "chunked schedule: {} steps, {} chunks per shard, {} transfers",
            chunked.num_steps(),
            chunked.chunks_per_shard,
            chunked.total_transfers()
        );
        println!("--- first lines of the MSCCL program ---");
        for line in msccl_xml.lines().take(6) {
            println!("{line}");
        }
    }

    // 4. Simulate the collective across buffer sizes and report the paper's
    //    throughput metric (N-1)*m/T.
    println!("--- simulated throughput ---");
    for shift in [13u32, 17, 21, 25] {
        let buffer: u64 = 1 << shift;
        let shard = buffer / topo.num_nodes() as u64;
        let report = Toolchain::simulate(&topo, &generated, shard, &fabric);
        println!(
            "buffer 2^{shift:<2} B  ->  {:8.3} GB/s (completion {:.3} ms)",
            report.throughput_gbps,
            report.completion_seconds * 1e3
        );
    }
}
