//! Distributed 3D FFT on a direct-connect torus (the Fig. 6 workload).
//!
//! Each process computes 2D FFTs on its slab, takes part in a global all-to-all
//! transpose, and finishes the remaining 1D FFTs. The all-to-all runs on an HPC-style
//! NIC-forwarding fabric, so the toolchain produces weighted multi-path routes
//! (MCF-extP); the example compares them against the SSSP single-path heuristic.
//!
//! ```text
//! cargo run --release --example fft_on_torus
//! ```

use a2a_baselines::sssp_schedule;
use a2a_fft::{FftCalibration, SlabFft3d};
use a2a_mcf::{extract_widest_paths, solve_decomposed_mcf};
use a2a_simnet::{simulate_path_schedule, SimParams};
use a2a_topology::generators;

fn main() {
    // A small 3D torus of CPU nodes with Cerio-style NICs (forwarding bandwidth above
    // the host injection bandwidth).
    let dims = [2usize, 2, 3];
    let topo = generators::torus(&dims);
    let params = SimParams::tacc_cluster();
    println!(
        "3D FFT on {} ({} processes, degree {})",
        topo.name(),
        topo.num_nodes(),
        topo.max_out_degree()
    );

    println!("solving decomposed MCF and extracting routes (MCF-extP)...");
    let decomposed = solve_decomposed_mcf(&topo).expect("decomposed MCF");
    let mcf_routes = extract_widest_paths(&topo, &decomposed.solution).expect("extraction");
    let sssp_routes = sssp_schedule(&topo).expect("SSSP");
    println!(
        "  MCF-extP uses {} routes total (max {} per pair); SSSP uses single routes",
        mcf_routes.total_paths(),
        mcf_routes.max_paths_per_commodity()
    );

    let calibration = FftCalibration::measure();
    println!(
        "\n{:>8} {:>12} {:>22} {:>22}",
        "grid", "a2a buffer", "MCF-extP total (s)", "SSSP total (s)"
    );
    for grid in [128usize, 256, 384] {
        let workload = SlabFft3d::new(grid, topo.num_nodes());
        let shard = workload.shard_bytes();
        let mcf_a2a = simulate_path_schedule(&topo, &mcf_routes, shard, &params);
        let sssp_a2a = simulate_path_schedule(&topo, &sssp_routes, shard, &params);
        let mcf_total = workload.breakdown(mcf_a2a.completion_seconds, &calibration);
        let sssp_total = workload.breakdown(sssp_a2a.completion_seconds, &calibration);
        println!(
            "{:>8} {:>9.1} MB {:>22.4} {:>22.4}",
            grid,
            workload.alltoall_buffer_bytes() / 1e6,
            mcf_total.total_seconds(),
            sssp_total.total_seconds()
        );
    }
    println!("\nThe all-to-all phase is where MCF-extP wins; compute phases are identical.");
}
