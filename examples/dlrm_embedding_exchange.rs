//! DLRM-style embedding exchange on an 8-GPU direct-connect cluster.
//!
//! Deep-learning recommendation models shard their embedding tables across
//! accelerators and run an all-to-all every iteration to exchange embedding vectors —
//! one of the motivating workloads of the paper. This example compares the tsMCF
//! schedule against the TACCL-like synthesis stand-in on the 8-node twisted hypercube
//! testbed and shows where the 1.2–1.6x gap of Fig. 3 comes from.
//!
//! ```text
//! cargo run --release --example dlrm_embedding_exchange
//! ```

use std::time::Duration;

use a2a_baselines::taccl_like_heuristic;
use a2a_mcf::tsmcf::solve_tsmcf_auto;
use a2a_simnet::{shard_bytes_for_buffer, simulate_link_schedule, SimParams};
use a2a_topology::generators;

fn main() {
    let topo = generators::twisted_hypercube(3);
    let params = SimParams::gpu_testbed();
    println!(
        "embedding exchange on {} ({} GPUs, degree {})",
        topo.name(),
        topo.num_nodes(),
        topo.regular_degree().unwrap_or(0)
    );

    println!("generating tsMCF schedule...");
    let tsmcf = solve_tsmcf_auto(&topo).expect("tsMCF");
    println!(
        "  {} steps, bottleneck utilization {:.3}",
        tsmcf.steps,
        tsmcf.total_utilization()
    );
    println!("generating TACCL-like schedule...");
    let taccl = taccl_like_heuristic(&topo, Duration::from_secs(5))
        .expect("TACCL-like")
        .schedule()
        .cloned()
        .expect("TACCL-like always completes");
    println!(
        "  {} steps, bottleneck utilization {:.3}",
        taccl.steps,
        taccl.total_utilization()
    );

    // A DLRM iteration exchanges per-GPU embedding batches from a few MB to hundreds
    // of MB depending on batch size and embedding dimension.
    println!(
        "\n{:>14} {:>14} {:>14} {:>9}",
        "buffer/GPU", "tsMCF GB/s", "TACCL GB/s", "speedup"
    );
    for shift in [20u32, 22, 24, 26, 28] {
        let buffer = (1u64 << shift) as f64;
        let shard = shard_bytes_for_buffer(buffer, topo.num_nodes());
        let a = simulate_link_schedule(&topo, &tsmcf, shard, &params);
        let b = simulate_link_schedule(&topo, &taccl, shard, &params);
        println!(
            "{:>12} MB {:>14.3} {:>14.3} {:>8.2}x",
            (buffer / (1 << 20) as f64).round(),
            a.throughput_gbps,
            b.throughput_gbps,
            a.throughput_gbps / b.throughput_gbps
        );
    }
}
