//! Topology design study (§5.4): which degree-d topology should a cluster use for
//! all-to-all traffic?
//!
//! Compares generalized Kautz graphs against 2D tori, Xpander-style expanders and
//! random regular graphs using the exact MCF all-to-all time and the Theorem-1 lower
//! bound.
//!
//! ```text
//! cargo run --release --example topology_design
//! ```

use a2a_mcf::{lower_bound_all_to_all_time, solve_decomposed_mcf};
use a2a_topology::{generators, metrics, Topology};

fn report(topo: &Topology, degree: usize) {
    let n = topo.num_nodes();
    let time = 1.0 / solve_decomposed_mcf(topo).expect("MCF").solution.flow_value;
    let bound = lower_bound_all_to_all_time(n, degree);
    println!(
        "{:<24} N={:<4} diameter={:<3} all-to-all time={:<8.3} vs lower bound {:<8.3} (ratio {:.2})",
        topo.name(),
        n,
        metrics::diameter(topo).unwrap_or(0),
        time,
        bound,
        time / bound
    );
}

fn main() {
    let degree = 4usize;
    println!("all-to-all efficiency of degree-{degree} topologies (lower ratio is better)\n");
    for &n in &[20usize, 30, 40] {
        report(&generators::generalized_kautz(n, degree), degree);
        report(&generators::random_regular(n, degree, 11), degree);
        if n % (degree + 1) == 0 {
            report(&generators::xpander(degree, n / (degree + 1), 7), degree);
        }
        report(&generators::torus_2d_near_square(n), degree);
        println!();
    }
    println!(
        "Generalized Kautz graphs track the Theorem-1 bound most closely and exist for\n\
         every (N, d) combination — the paper's recommendation for all-to-all fabrics."
    );
}
