//! Produce a structured SolveReport from a column-generation solve.
//!
//! ```text
//! cargo run --release --example solve_report
//! ```
//!
//! Runs the torus-4x4 all-to-all through path-MCF column generation with span
//! tracing enabled and the stall watchdog armed, then builds the
//! machine-readable [`a2a_obs::SolveReport`] — per-round convergence
//! trajectory (objective, dual violation, columns added/purged, misprices,
//! master/pricing walls), nonzero counters, per-stage wall breakdown, and
//! latency histogram summaries — and writes it to `solve_report.json` (the
//! same `a2a.solve_report.v1` schema the perf harness emits one file per
//! production config under `solve_reports/`). A few derived views are
//! printed: the convergence table, the top stages, and the iteration-time
//! percentiles, so the walkthrough doubles as a guide to reading the JSON.

use a2a_mcf::pmcf::{solve_path_mcf_colgen_among, ColGenOptions};
use a2a_mcf::{CommoditySet, Stabilization};
use a2a_topology::generators;
use std::time::Instant;

fn main() {
    // Instrumentation is opt-in: tracing fills the stage breakdown and
    // histograms, the watchdog fills `watchdog_trips` (0 on a healthy solve).
    a2a_obs::enable();
    a2a_obs::watchdog::configure(Some(a2a_obs::WatchdogConfig::default()));

    let topo = generators::torus(&[4, 4]);
    let commodities = CommoditySet::all_pairs(topo.num_nodes());
    let opts = ColGenOptions {
        partial_pricing: Some(1e-1),
        stabilization: Stabilization::Smoothing { alpha: 0.1 },
        ..ColGenOptions::default()
    };
    let start = Instant::now();
    let solved = solve_path_mcf_colgen_among(&topo, commodities, &opts).expect("colgen solve");
    let wall = start.elapsed().as_secs_f64();

    a2a_obs::disable();
    a2a_obs::watchdog::configure(None);
    let summary = a2a_obs::summary::summarize(&a2a_obs::flush());

    // The adapter maps ColGenStats onto the report schema; attach_summary
    // adds the trace-derived sections.
    let mut report = a2a_mcf::report::colgen_solve_report(
        "path-mcf",
        "torus-4x4",
        "colgen",
        wall,
        solved.schedule.flow_value,
        &solved.stats,
    );
    report.attach_summary(&summary);

    std::fs::write("solve_report.json", report.to_json()).expect("write solve_report.json");
    println!(
        "solved torus-4x4 all-to-all: F = {:.6} in {wall:.3}s, optimal = {:?}, \
         watchdog trips = {}",
        report.objective, report.proved_optimal, report.watchdog_trips
    );

    println!("\nconvergence ({} rounds):", report.convergence.len());
    println!("  round    objective  viol       +cols  misprice  master_iters");
    for r in &report.convergence {
        println!(
            "  {:>5}  {:>11.6}  {:<9.3e} {:>5}  {:<8}  {:>12}",
            r.round,
            r.objective,
            r.dual_violation,
            r.columns_added,
            r.misprice,
            r.master_iterations
        );
    }

    println!("\ntop stages by wall:");
    let mut stages = report.stage_breakdown.clone();
    stages.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite walls"));
    for (name, secs) in stages.iter().take(5) {
        println!("  {name:<24} {secs:.6}s");
    }

    println!("\nlatency histograms:");
    for h in &report.histograms {
        println!(
            "  {:<24} n={:<6} p50={} p90={} p99={} max={}",
            h.name, h.count, h.p50, h.p90, h.p99, h.max
        );
    }
    println!("\nwrote solve_report.json (schema a2a.solve_report.v1)");
}
