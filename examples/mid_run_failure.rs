//! Closed-loop digital twin walkthrough: a link dies mid-run and the planner
//! repairs the schedule online.
//!
//! ```text
//! cargo run --release --example mid_run_failure
//! ```
//!
//! The static story (see `degraded_fabric.rs`) ends with "a failed link rejects
//! the schedule — re-solve on the punctured topology". This example closes the
//! loop in-flight instead:
//!
//! 1. solve the nominal all-to-all and start executing it;
//! 2. a timed event kills a schedule-carrying link mid-run
//!    ([`ScenarioTimeline`]) — the event engine interrupts with an
//!    [`InFlightSnapshot`]: where every chunk is, byte-exact;
//! 3. the replan driver turns the snapshot into residual demands on the
//!    punctured fabric, re-solves them by column generation *warm-started from
//!    the nominal solve's incumbent columns*, splices the repaired suffix onto
//!    the executed prefix, and resumes;
//! 4. the result is compared against the clairvoyant planner (one that knew
//!    the failure before the run started) and the never-failed nominal run.

use a2a_mcf::solve_tsmcf_colgen_auto;
use a2a_schedule::ChunkedSchedule;
use a2a_simnet::{
    replan_run, simulate_chunked_timeline, ExecutionModel, IncumbentPool, ReplanOptions, Scenario,
    ScenarioTimeline, SimParams, TimelineRun,
};
use a2a_topology::generators;

fn main() {
    let topo = generators::torus(&[3, 3]);
    let params = SimParams::gpu_testbed();
    let shard = 64.0 * 1024.0 * 1024.0; // 64 MiB per commodity

    // 1. Nominal plan: time-stepped MCF by column generation, quantized to
    // 8 chunks per shard. Keep the incumbent columns — they warm-start repairs.
    let cg = solve_tsmcf_colgen_auto(&topo).expect("nominal solve");
    let schedule = ChunkedSchedule::from_tsmcf_exact(&topo, &cg.solution, 8).expect("quantization");
    let pool = IncumbentPool {
        columns: cg.columns,
        commodities: cg.solution.commodities.clone(),
        steps: cg.solution.steps,
    };
    let nominal = match simulate_chunked_timeline(
        &topo,
        &schedule,
        shard,
        &params,
        &ScenarioTimeline::nominal(),
        ExecutionModel::Synchronized,
    )
    .expect("nominal run")
    {
        TimelineRun::Completed(r) => r.report.completion_seconds,
        TimelineRun::Interrupted(_) => unreachable!("no events"),
    };
    println!(
        "nominal: {} steps, completes in {:.3} ms",
        schedule.num_steps(),
        nominal * 1e3
    );

    // 2. The failure: the first link the schedule sends on dies at 70% of the
    // nominal makespan, stranding whatever was in flight on it.
    let tr = &schedule.steps[0].transfers[0];
    let edge = topo
        .find_edge(tr.from, tr.to)
        .expect("schedule-carrying link");
    let t_fail = 0.7 * nominal;
    let timeline = ScenarioTimeline::new(Scenario::nominal()).with_link_failure_at(t_fail, edge);
    println!(
        "failure: link {} -> {} dies at {:.3} ms (70% of the nominal makespan)",
        tr.from,
        tr.to,
        t_fail * 1e3
    );

    // 3. Close the loop: detect -> snapshot -> residual re-solve -> splice ->
    // resume. `replan_run` drives the whole cycle (and would keep going under
    // cascading failures, up to `max_attempts`).
    let run = replan_run(
        &topo,
        &schedule,
        shard,
        &params,
        &timeline,
        Some(&pool),
        &ReplanOptions::default(),
    )
    .expect("replan completes");
    for (i, a) in run.attempts.iter().enumerate() {
        println!(
            "repair {}: {} residual demands at t = {:.3} ms, {} warm seeds from the \
             incumbent pool, residual LP solved in {:.1} ms ({} master iterations, \
             optimal: {}), spliced a {}-step suffix",
            i + 1,
            a.num_demands,
            a.failure_time * 1e3,
            a.warm_seeds,
            a.solve_wall_secs * 1e3,
            a.master_iterations,
            a.proved_optimal,
            a.suffix_steps
        );
    }
    let replanned = run.completion_seconds();

    // 4. The two reference points. Clairvoyant: re-solve the full all-to-all
    // on the punctured topology as if the failure had been known up front.
    let punctured = topo.without_edges(&run.attempts[0].failed_links);
    let clair = solve_tsmcf_colgen_auto(&punctured).expect("clairvoyant solve");
    let clair_schedule =
        ChunkedSchedule::from_tsmcf_exact(&punctured, &clair.solution, 8).expect("quantization");
    let clairvoyant = match simulate_chunked_timeline(
        &punctured,
        &clair_schedule,
        shard,
        &params,
        &ScenarioTimeline::nominal(),
        ExecutionModel::Synchronized,
    )
    .expect("clairvoyant run")
    {
        TimelineRun::Completed(r) => r.report.completion_seconds,
        TimelineRun::Interrupted(_) => unreachable!("no events"),
    };
    println!(
        "replanned: {:.3} ms | clairvoyant punctured re-solve: {:.3} ms | nominal: {:.3} ms",
        replanned * 1e3,
        clairvoyant * 1e3,
        nominal * 1e3
    );
    println!(
        "makespan loss: {:.1}% vs clairvoyant, {:.1}% vs the never-failed nominal — and \
         the warm residual solve cost {} master iterations where the clairvoyant's cold \
         solve cost {}",
        (replanned / clairvoyant - 1.0) * 100.0,
        (replanned / nominal - 1.0) * 100.0,
        run.attempts[0].master_iterations,
        clair.stats.total_master_iterations()
    );
}
