//! Trace a decomposed MCF solve and export a Chrome trace.
//!
//! ```text
//! cargo run --release --example trace_solve
//! ```
//!
//! Enables the `a2a_obs` span tracer, runs the torus-4x4 all-to-all through
//! the decomposed-MCF pipeline (structural crash basis + dual simplex master,
//! warm-started children — the production configuration), and writes
//! `trace.json`: a Chrome trace-event file you can open in `chrome://tracing`
//! or <https://ui.perfetto.dev>. The master solve, every per-destination
//! child, the LU factorizations and the Forrest–Tomlin updates all show up as
//! nested spans; the simplex iteration counters ride along as counter tracks.
//! The in-process summary tree — the same aggregation the perf harness embeds
//! in its `stage_breakdown` columns — is printed to stdout.

use a2a_lp::Pricing;
use a2a_mcf::decomposed::{solve_decomposed_mcf_with, DecomposedOptions};
use a2a_mcf::CommoditySet;
use a2a_topology::generators;

fn main() {
    // Tracing is off by default everywhere (a disabled span costs one branch
    // on a relaxed atomic load); opt in for the region worth watching.
    a2a_obs::enable();

    let topo = generators::torus(&[4, 4]);
    let commodities = CommoditySet::all_pairs(topo.num_nodes());
    let opts = DecomposedOptions {
        pricing: Pricing::Devex,
        warm_start_children: true,
        crash_master: true,
        ..DecomposedOptions::default()
    };
    let solved = solve_decomposed_mcf_with(&topo, commodities, &opts).expect("decomposed solve");

    a2a_obs::disable();
    let data = a2a_obs::flush();

    let path = "trace.json";
    let trace = a2a_obs::chrome::chrome_trace_string(&data);
    std::fs::write(path, &trace).expect("write trace.json");
    let check = a2a_obs::chrome::validate_chrome_trace(&trace).expect("trace validates");

    println!(
        "solved torus-4x4 all-to-all: F = {:.6}, {} simplex iterations",
        solved.solution.flow_value,
        solved.timings.total_iterations()
    );
    println!(
        "wrote {path}: {} events, {} complete spans, max depth {} — open it in \
         chrome://tracing or https://ui.perfetto.dev",
        check.total_events, check.complete_spans, check.max_depth
    );

    let summary = a2a_obs::summary::summarize(&data);
    assert!(summary.is_balanced(), "all spans must close");
    println!("\n{}", summary.render());
}
