//! Umbrella crate for the all-to-all collective-communication toolchain.
//!
//! Re-exports every workspace crate under one root so downstream users (and the
//! cross-crate integration tests and examples in this package) can depend on a
//! single name. The real code lives in the `crates/` members.

pub use a2a_baselines as baselines;
pub use a2a_core as core;
pub use a2a_fft as fft;
pub use a2a_lp as lp;
pub use a2a_mcf as mcf;
pub use a2a_schedule as schedule;
pub use a2a_simnet as simnet;
pub use a2a_topology as topology;
